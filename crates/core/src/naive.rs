//! The naive baseline: pure spatial partitioning (§V).
//!
//! The paper's comparison point is "a simple spatial partitioning
//! scheduler that lacks the context switch and temporal partitioning
//! features":
//!
//! * the GPU is split into `np` equal partitions (never over-subscribed);
//! * each task is statically assigned to one partition (round robin);
//! * each partition executes whole networks sequentially, FIFO — no
//!   stages, no priorities, no concurrency;
//! * switching a partition to a different tenant costs a reconfiguration
//!   delay (weight upload, context state) that grows with the number of
//!   tenants sharing the partition — exactly the cost SGPRS's seamless,
//!   zero-configuration switching removes.
//!
//! Past the pivot point this switch tax plus head-of-line blocking produce
//! the paper's observed behaviour: total FPS *degrades* to a plateau well
//! below SGPRS while the deadline-miss rate explodes (the domino effect of
//! §V).

use crate::{Admission, CompiledTask, MetricsCollector, NaiveConfig, RunMetrics};
use sgprs_gpu_sim::{
    ContextConfig, ContextId, DeviceEvent, GpuEngine, KernelDesc, KernelHandle, StreamClass,
};
use sgprs_rt::{ReleaseGenerator, SimTime};
use std::collections::{HashMap, VecDeque};

/// One whole-network job waiting in a partition's FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JobRef {
    task: usize,
    release_index: u64,
    release: SimTime,
    deadline: SimTime,
}

/// The naive spatial-partitioning scheduler. See the module documentation for the algorithm details.
#[derive(Debug)]
pub struct NaiveScheduler {
    config: NaiveConfig,
    engine: GpuEngine,
    tasks: Vec<CompiledTask>,
    gens: Vec<ReleaseGenerator>,
    outstanding: Vec<u64>,
    /// Frame buffer per task ([`Admission::FrameBuffer`]).
    buffered: Vec<Option<SimTime>>,
    /// Per-task monotone admission counter.
    admit_seq: Vec<u64>,
    /// Static task → partition assignment (round robin).
    ctx_of_task: Vec<usize>,
    /// Tenants (distinct tasks) per partition, fixed at construction.
    tenants: Vec<usize>,
    fifo: Vec<VecDeque<JobRef>>,
    running: HashMap<KernelHandle, JobRef>,
    last_tenant: Vec<Option<usize>>,
    collector: MetricsCollector,
}

impl NaiveScheduler {
    /// Creates the baseline for `tasks` over `config.contexts` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    #[must_use]
    pub fn new(config: NaiveConfig, tasks: Vec<CompiledTask>) -> Self {
        assert!(!tasks.is_empty(), "need at least one task");
        let sm_allocs = config.sm_allocations();
        let mut builder = GpuEngine::builder(config.gpu.clone())
            .contention_model(config.contention)
            .seed(config.seed)
            .tracing(config.tracing);
        for &sm in &sm_allocs {
            // One stream, sequential execution: no temporal partitioning.
            builder = builder.context(ContextConfig::new(sm).with_streams(1, 0));
        }
        let engine = builder.build();
        let n_ctx = sm_allocs.len();
        let ctx_of_task: Vec<usize> = (0..tasks.len()).map(|i| i % n_ctx).collect();
        let mut tenants = vec![0usize; n_ctx];
        for &c in &ctx_of_task {
            tenants[c] += 1;
        }
        let gens = tasks
            .iter()
            .map(|t| ReleaseGenerator::new(SimTime::ZERO + t.spec.phase, t.spec.period))
            .collect();
        let names = tasks.iter().map(|t| t.spec.name.clone()).collect();
        let collector = MetricsCollector::new(names, SimTime::ZERO + config.warmup);
        let n_tasks = tasks.len();
        NaiveScheduler {
            config,
            engine,
            tasks,
            gens,
            outstanding: vec![0; n_tasks],
            buffered: vec![None; n_tasks],
            admit_seq: vec![0; n_tasks],
            ctx_of_task,
            tenants,
            fifo: (0..n_ctx).map(|_| VecDeque::new()).collect(),
            running: HashMap::new(),
            last_tenant: vec![None; n_ctx],
            collector,
        }
    }

    /// The underlying device engine (for traces and occupancy stats).
    #[must_use]
    pub fn engine(&self) -> &GpuEngine {
        &self.engine
    }

    /// Runs the simulation until `end`, returning metrics over
    /// `warmup..end`.
    pub fn run(&mut self, end: SimTime) -> RunMetrics {
        loop {
            let next_release = self
                .gens
                .iter()
                .map(ReleaseGenerator::next_release)
                .min()
                .expect("at least one task");
            let next_device = self.engine.next_event_time();
            let next = match next_device {
                Some(d) if d < next_release => d,
                _ => next_release,
            };
            if next > end {
                break;
            }
            let events = self.engine.advance_to(next);
            self.handle_events(&events);
            if next_release == next {
                self.do_releases(next);
            }
            self.dispatch();
        }
        let events = self.engine.advance_to(end);
        self.handle_events(&events);
        let names = self.tasks.iter().map(|t| t.spec.name.clone()).collect();
        let fresh = MetricsCollector::new(names, SimTime::ZERO + self.config.warmup);
        std::mem::replace(&mut self.collector, fresh).finish(end)
    }

    fn admit(&mut self, task_idx: usize, release: SimTime) {
        let index = self.admit_seq[task_idx];
        self.admit_seq[task_idx] += 1;
        self.outstanding[task_idx] += 1;
        let job = JobRef {
            task: task_idx,
            release_index: index,
            release,
            deadline: release + self.tasks[task_idx].spec.deadline,
        };
        self.fifo[self.ctx_of_task[task_idx]].push_back(job);
    }

    fn do_releases(&mut self, now: SimTime) {
        for task_idx in 0..self.tasks.len() {
            while self.gens[task_idx].next_release() <= now {
                let release = self.gens[task_idx].next_release();
                self.gens[task_idx].advance();
                self.collector.record_release(task_idx, release);
                let busy = self.outstanding[task_idx] > 0;
                if busy {
                    match self.config.admission {
                        Admission::SkipIfBusy => {
                            self.collector.record_skip(task_idx, release);
                            continue;
                        }
                        Admission::FrameBuffer => {
                            if let Some(stale) = self.buffered[task_idx].replace(release)
                            {
                                self.collector.record_skip(task_idx, stale);
                            }
                            continue;
                        }
                        Admission::QueueAll => {}
                    }
                }
                self.admit(task_idx, release);
            }
        }
    }

    fn handle_events(&mut self, events: &[DeviceEvent]) {
        for ev in events {
            let Some(job) = self.running.remove(&ev.kernel) else {
                continue;
            };
            self.collector.record_completion(
                job.task,
                job.release,
                ev.finished_at,
                job.deadline,
            );
            self.outstanding[job.task] = self.outstanding[job.task].saturating_sub(1);
            if self.config.admission == Admission::FrameBuffer {
                if let Some(_boundary) = self.buffered[job.task].take() {
                    self.admit(job.task, ev.finished_at);
                }
            }
        }
    }

    fn dispatch(&mut self) {
        for ctx in 0..self.fifo.len() {
            // Sequential: dispatch only when the partition is idle.
            if self.engine.snapshot(ContextId(ctx)).resident > 0 {
                continue;
            }
            let Some(job) = self.fifo[ctx].pop_front() else {
                continue;
            };
            // The partition reconfiguration tax SGPRS avoids: charged when
            // the tenant changes.
            let switch_ns = if self.last_tenant[ctx] == Some(job.task) {
                0.0
            } else {
                self.config.switch_cost_ns(self.tenants[ctx])
            };
            self.last_tenant[ctx] = Some(job.task);
            let label = format!("τ{}#{}", job.task, job.release_index);
            let desc = KernelDesc::new(label, self.tasks[job.task].whole_profile.clone())
                .with_extra_ns(switch_ns);
            let handle = self
                .engine
                .submit(ContextId(ctx), StreamClass::High, desc)
                .expect("partition was idle");
            self.running.insert(handle, job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{offline, ContextPoolSpec};
    use sgprs_dnn::{models, CostModel};
    use sgprs_rt::SimDuration;

    fn compile(n: usize) -> Vec<CompiledTask> {
        let net = models::resnet18(1, 224);
        let task = offline::compile_network_task(
            "cam",
            &net,
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            &ContextPoolSpec::new(2, 1.0),
        )
        .unwrap();
        vec![task; n]
    }

    fn run_naive(contexts: usize, n: usize, secs: u64) -> RunMetrics {
        let mut s = NaiveScheduler::new(NaiveConfig::new(contexts), compile(n));
        s.run(SimTime::ZERO + SimDuration::from_secs(secs))
    }

    #[test]
    fn single_task_is_schedulable() {
        let m = run_naive(2, 1, 2);
        assert!(m.is_miss_free(), "{m:?}");
        assert!((m.total_fps - 30.0).abs() < 1.5);
    }

    #[test]
    fn light_load_meets_deadlines() {
        let m = run_naive(2, 4, 2);
        assert!(m.is_miss_free(), "{m:?}");
        assert!((m.total_fps - 120.0).abs() < 4.0);
    }

    #[test]
    fn overload_degrades_hard() {
        let m = run_naive(2, 30, 3);
        assert!(m.dmr > 0.3, "naive must collapse under 30 tasks, dmr {:.2}", m.dmr);
        assert!(m.total_fps > 100.0, "but it still serves: {:.0}", m.total_fps);
    }

    #[test]
    fn pivot_is_earlier_than_sgprs() {
        // At 16 tasks the naive scheduler already misses deadlines while
        // SGPRS (np=2, os=1.5) still sails through.
        let naive = run_naive(2, 16, 2);
        assert!(!naive.is_miss_free(), "naive at 16 tasks: {naive:?}");
        let pool = ContextPoolSpec::new(2, 1.5);
        let net = models::resnet18(1, 224);
        let task = offline::compile_network_task(
            "cam",
            &net,
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            &pool,
        )
        .unwrap();
        let mut s = crate::SgprsScheduler::new(
            crate::SgprsConfig::new(pool),
            vec![task; 16],
        );
        let sgprs = s.run(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(
            sgprs.is_miss_free(),
            "sgprs at 16 tasks should be clean: late={} skipped={}",
            sgprs.late,
            sgprs.skipped
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_naive(3, 12, 2);
        let b = run_naive(3, 12, 2);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.late, b.late);
    }

    #[test]
    fn switch_tax_reduces_throughput_with_many_tenants() {
        // Same offered load, fewer tenants per context: 2 tenants on 2
        // contexts vs 8 tenants on 2 contexts at the saturation point.
        let few = run_naive(2, 2, 2);
        let many = run_naive(2, 30, 3);
        // Per-completion cost must be higher with many tenants; a crude
        // proxy: many-tenant FPS is below the zero-switch capacity bound.
        assert!(many.total_fps < 30.0 * 30.0);
        assert!(few.is_miss_free());
    }
}
