//! The SGPRS online phase (§IV-B).
//!
//! At run time the scheduler:
//!
//! 1. **Releases jobs** every period and stamps every stage with an
//!    absolute deadline derived from its offline virtual relative deadline
//!    (§IV-B1).
//! 2. **Assigns contexts** to released (ready) stages by the paper's
//!    three-rule policy (§IV-B2): *empty queues first, then the context
//!    meeting the deadline with the shortest queue, and if none, the one
//!    with the earliest finish time.*
//! 3. **Queues stages** per context in three priority bands served
//!    high → medium → low, EDF inside each band, dispatching onto the
//!    context's 2 high- + 2 low-priority streams (max four concurrent
//!    stages per context); a low-priority stage whose predecessor missed
//!    its virtual deadline is promoted to medium (§IV-B3).
//!
//! Partition switches are *seamless*: dispatching any task's stage to any
//! context carries no reconfiguration cost — the paper's headline property
//! (compare [`crate::NaiveScheduler`], which pays for every tenant
//! switch).

use crate::{Admission, CompiledTask, MetricsCollector, QueueOrder, RunMetrics, SgprsConfig};
use sgprs_gpu_sim::{
    ContextConfig, ContextId, DeviceEvent, GpuEngine, KernelDesc, KernelHandle, StreamClass,
};
use sgprs_rt::{Job, PriorityBands, PriorityLevel, ReleaseGenerator, SimTime, TaskId};
use std::collections::HashMap;

/// Identifies one stage instance of one released job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StageRef {
    task: usize,
    release_index: u64,
    stage: usize,
}

/// Which band(s) a dispatch pop may take from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PopBand {
    /// Only the high band (feeds high-priority streams).
    ExactHigh,
    /// Medium then low (feeds low-priority streams).
    AtMostMedium,
}

/// The SGPRS online scheduler. See the module documentation for the algorithm details.
#[derive(Debug)]
pub struct SgprsScheduler {
    config: SgprsConfig,
    engine: GpuEngine,
    tasks: Vec<CompiledTask>,
    gens: Vec<ReleaseGenerator>,
    /// Released, not-yet-finished jobs keyed by (task, release index).
    active: HashMap<(usize, u64), Job>,
    /// Jobs in flight per task (admission control).
    outstanding: Vec<u64>,
    /// Frame buffer per task: the release boundary of the freshest frame
    /// waiting while a job is in flight ([`Admission::FrameBuffer`]).
    buffered: Vec<Option<SimTime>>,
    /// Per-task monotone admission counter (job ids stay unique even when
    /// grabbed frames are admitted off the period grid).
    admit_seq: Vec<u64>,
    /// Exponential moving average of observed job response times (ns),
    /// driving admission control.
    response_ema_ns: f64,
    /// Completions observed so far (EMA warm-up gate).
    completions_seen: u64,
    /// Per-context three-band EDF ready queues.
    queues: Vec<PriorityBands<StageRef>>,
    /// Kernels in flight: handle → (stage, isolated-duration estimate).
    running: HashMap<KernelHandle, (StageRef, f64)>,
    /// Outstanding-work estimate per context in nanoseconds (queued +
    /// running stages at their isolated estimates).
    pending_ns: Vec<f64>,
    collector: MetricsCollector,
    sm_allocs: Vec<u32>,
    /// Monotone counter providing FIFO pseudo-deadlines for the ablation
    /// queue order.
    fifo_seq: u64,
    /// Total stream slots across the pool (the device's job-level
    /// concurrency; admission never declines below this depth).
    slot_count: usize,
}

impl SgprsScheduler {
    /// Creates a scheduler for `tasks` over the configured context pool.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or any task has no stages.
    #[must_use]
    pub fn new(config: SgprsConfig, tasks: Vec<CompiledTask>) -> Self {
        assert!(!tasks.is_empty(), "need at least one task");
        assert!(
            tasks.iter().all(|t| t.stage_count() > 0),
            "SGPRS schedules staged tasks; use the offline phase to compile them"
        );
        let sm_allocs = config.pool.sm_allocations();
        let mut builder = GpuEngine::builder(config.pool.gpu.clone())
            .contention_model(config.contention)
            .seed(config.seed)
            .tracing(config.tracing);
        for &sm in &sm_allocs {
            builder = builder.context(ContextConfig::new(sm));
        }
        let engine = builder.build();
        let gens = tasks
            .iter()
            .map(|t| ReleaseGenerator::new(SimTime::ZERO + t.spec.phase, t.spec.period))
            .collect();
        let names = tasks.iter().map(|t| t.spec.name.clone()).collect();
        let collector = MetricsCollector::new(names, SimTime::ZERO + config.warmup);
        let n_ctx = sm_allocs.len();
        let n_tasks = tasks.len();
        SgprsScheduler {
            config,
            engine,
            tasks,
            gens,
            active: HashMap::new(),
            outstanding: vec![0; n_tasks],
            buffered: vec![None; n_tasks],
            admit_seq: vec![0; n_tasks],
            response_ema_ns: 0.0,
            completions_seen: 0,
            queues: (0..n_ctx).map(|_| PriorityBands::new()).collect(),
            running: HashMap::new(),
            pending_ns: vec![0.0; n_ctx],
            collector,
            sm_allocs,
            fifo_seq: 0,
            slot_count: n_ctx * ContextConfig::new(1).total_streams(),
        }
    }

    /// The underlying device engine (for traces and occupancy stats).
    #[must_use]
    pub fn engine(&self) -> &GpuEngine {
        &self.engine
    }

    /// Runs the simulation until `end` and returns the metrics over the
    /// measurement window (`warmup..end`).
    pub fn run(&mut self, end: SimTime) -> RunMetrics {
        loop {
            let next_release = self
                .gens
                .iter()
                .map(ReleaseGenerator::next_release)
                .min()
                .expect("at least one task");
            let next_device = self.engine.next_event_time();
            let next = match next_device {
                Some(d) if d < next_release => d,
                _ => next_release,
            };
            if next > end {
                break;
            }
            let events = self.engine.advance_to(next);
            self.handle_events(&events);
            if next_release == next {
                self.do_releases(next);
            }
            self.dispatch();
        }
        let events = self.engine.advance_to(end);
        self.handle_events(&events);
        let names = self.tasks.iter().map(|t| t.spec.name.clone()).collect();
        let fresh = MetricsCollector::new(names, SimTime::ZERO + self.config.warmup);
        std::mem::replace(&mut self.collector, fresh).finish(end)
    }

    /// Releases every job due at `now` (§IV-B1: absolute stage deadlines
    /// are stamped at release).
    fn do_releases(&mut self, now: SimTime) {
        for task_idx in 0..self.tasks.len() {
            while self.gens[task_idx].next_release() <= now {
                let release = self.gens[task_idx].next_release();
                self.gens[task_idx].advance();
                self.collector.record_release(task_idx, release);
                let busy = self.outstanding[task_idx] > 0;
                if busy {
                    match self.config.admission {
                        Admission::SkipIfBusy => {
                            self.collector.record_skip(task_idx, release);
                            continue;
                        }
                        Admission::FrameBuffer => {
                            // Newest frame wins: replacing a staler
                            // buffered frame drops it (a miss).
                            if let Some(stale) = self.buffered[task_idx].replace(release)
                            {
                                self.collector.record_skip(task_idx, stale);
                            }
                            continue;
                        }
                        Admission::QueueAll => {}
                    }
                }
                if !self.admission_ok(task_idx, release) {
                    // Declined up front: the frame is dropped before any
                    // GPU time is spent on it.
                    self.collector.record_skip(task_idx, release);
                    continue;
                }
                let index = self.next_admit_index(task_idx);
                self.admit(task_idx, index, release);
            }
        }
    }

    /// EMA smoothing factor for the response-time estimate.
    const RESPONSE_EMA_ALPHA: f64 = 0.05;

    /// Feeds one observed job response into the admission estimator.
    fn note_completion(&mut self, response_ns: f64) {
        self.completions_seen += 1;
        if self.completions_seen == 1 {
            self.response_ema_ns = response_ns;
        } else {
            self.response_ema_ns = (1.0 - Self::RESPONSE_EMA_ALPHA) * self.response_ema_ns
                + Self::RESPONSE_EMA_ALPHA * response_ns;
        }
    }

    /// Feedback admission test: a new frame is declined while the
    /// observed (smoothed) job response time exceeds the task's relative
    /// deadline. Declining sheds load, responses recover, admission
    /// resumes — the closed loop settles with in-flight work sized so
    /// that admitted jobs finish roughly on time, which is what lets
    /// SGPRS sustain total FPS with a moderate miss-rate slope past the
    /// pivot (§V). Self-calibrating: no capacity model needed.
    fn admission_ok(&self, task: usize, _now: SimTime) -> bool {
        if !self.config.admission_control || self.config.admission == Admission::QueueAll {
            return true;
        }
        if self.completions_seen < 16 {
            return true; // cold start: no reliable estimate yet
        }
        // Below the device's own concurrency there is no queueing — a new
        // job cannot make anyone late, and admitting keeps the response
        // estimator fed (no shed-forever deadlock).
        if self.active.len() < self.slot_count + self.slot_count / 2 {
            return true;
        }
        self.response_ema_ns <= self.tasks[task].spec.deadline.as_nanos() as f64
    }

    fn next_admit_index(&mut self, task: usize) -> u64 {
        let i = self.admit_seq[task];
        self.admit_seq[task] += 1;
        i
    }

    /// Admits a job of `task_idx` released (or grabbed) at `release`.
    fn admit(&mut self, task_idx: usize, index: u64, release: SimTime) {
        let job = Job::release(TaskId(task_idx), index, &self.tasks[task_idx].spec, release);
        self.outstanding[task_idx] += 1;
        // Source stages are immediately ready: assign contexts now.
        let sources = self.tasks[task_idx].spec.source_stages();
        self.active.insert((task_idx, index), job);
        for stage in sources {
            let sref = StageRef {
                task: task_idx,
                release_index: index,
                stage,
            };
            let priority = self.tasks[task_idx].spec.stages[stage].priority;
            self.enqueue_stage(sref, priority);
        }
    }

    /// Handles kernel completions: stage bookkeeping, promotion rule, job
    /// completion accounting.
    fn handle_events(&mut self, events: &[DeviceEvent]) {
        for ev in events {
            let Some((sref, est)) = self.running.remove(&ev.kernel) else {
                continue;
            };
            self.pending_ns[ev.context.0] = (self.pending_ns[ev.context.0] - est).max(0.0);
            let key = (sref.task, sref.release_index);
            let Some(job) = self.active.get_mut(&key) else {
                continue;
            };
            let missed_virtual =
                ev.finished_at > job.stages[sref.stage].absolute_deadline;
            let (ready, completed, release, deadline) = {
                let spec = &self.tasks[sref.task].spec;
                let newly_ready = job.complete_stage(sref.stage, ev.finished_at, spec);
                let ready: Vec<(usize, PriorityLevel)> = newly_ready
                    .into_iter()
                    .map(|stage| {
                        let mut priority = spec.stages[stage].priority;
                        // §IV-B3: a low stage whose predecessor missed its
                        // virtual deadline is promoted to medium.
                        if missed_virtual && self.config.medium_promotion {
                            priority = priority.promoted();
                        }
                        (stage, priority)
                    })
                    .collect();
                (ready, job.completed_at, job.release, job.absolute_deadline)
            };
            for (stage, priority) in ready {
                let sref = StageRef {
                    task: sref.task,
                    release_index: sref.release_index,
                    stage,
                };
                self.enqueue_stage(sref, priority);
            }
            if let Some(done) = completed {
                self.note_completion(done.duration_since(release).as_nanos() as f64);
                self.collector
                    .record_completion(sref.task, release, done, deadline);
                self.outstanding[sref.task] =
                    self.outstanding[sref.task].saturating_sub(1);
                self.active.remove(&key);
                // Frame-buffer admission: grab the freshest buffered frame
                // right away (its deadline starts at the grab), keeping
                // the device work-conserving under overload.
                self.grab_buffered(sref.task, done);
            }
        }
    }

    /// §IV-B2 context assignment: empty queues first, then the
    /// deadline-meeting context with the shortest queue, else earliest
    /// estimated finish time.
    fn enqueue_stage(&mut self, sref: StageRef, priority: PriorityLevel) {
        let deadline = self.active[&(sref.task, sref.release_index)].stages[sref.stage]
            .absolute_deadline;
        let now_ns = self.engine.now().as_nanos() as f64;
        let n_ctx = self.queues.len();

        // Rule 1: contexts with empty queues — pick the one with the most
        // idle streams (least resident work), ties to the lowest index.
        let mut best_empty: Option<(usize, usize)> = None; // (idle streams, ctx)
        for ctx in 0..n_ctx {
            if self.queues[ctx].is_empty() {
                let snap = self.engine.snapshot(ContextId(ctx));
                let idle = snap.idle_high + snap.idle_low;
                if best_empty.is_none_or(|(best_idle, _)| idle > best_idle) {
                    best_empty = Some((idle, ctx));
                }
            }
        }
        let chosen = if let Some((_, ctx)) = best_empty {
            ctx
        } else {
            // Rule 2: among contexts whose estimated finish meets the
            // stage deadline, the shortest queue.
            let mut meeting: Option<(usize, usize)> = None; // (queue len, ctx)
            let mut earliest: (f64, usize) = (f64::INFINITY, 0);
            for ctx in 0..n_ctx {
                let est = self.estimate_finish_ns(ctx, sref, now_ns);
                if est < earliest.0 {
                    earliest = (est, ctx);
                }
                if est <= deadline.as_nanos() as f64 {
                    let qlen = self.queues[ctx].len();
                    if meeting.is_none_or(|(best_len, _)| qlen < best_len) {
                        meeting = Some((qlen, ctx));
                    }
                }
            }
            match meeting {
                Some((_, ctx)) => ctx,
                // Rule 3: earliest estimated finish time.
                None => earliest.1,
            }
        };

        let est = self.isolated_estimate_ns(chosen, sref);
        self.pending_ns[chosen] += est;
        let queue_key = match self.config.queue_order {
            QueueOrder::Edf => deadline,
            QueueOrder::Fifo => {
                self.fifo_seq += 1;
                SimTime::from_nanos(self.fifo_seq)
            }
        };
        self.queues[chosen].push(priority, sref, queue_key);
    }

    /// Isolated-duration estimate of a stage on a context's full SM
    /// allocation (the scheduler's cheap WCET-like estimate).
    fn isolated_estimate_ns(&self, ctx: usize, sref: StageRef) -> f64 {
        let profile = &self.tasks[sref.task].stage_profiles[sref.stage];
        self.config.pool.gpu.launch_overhead_ns as f64
            + profile.duration_ns_at(
                self.engine.speedup_model(),
                f64::from(self.sm_allocs[ctx]),
            )
    }

    /// Estimated absolute finish instant (ns) if the stage were appended
    /// to context `ctx` now: current backlog shrunk by the context's
    /// intra-context parallelism, plus the stage's own estimate.
    fn estimate_finish_ns(&self, ctx: usize, sref: StageRef, now_ns: f64) -> f64 {
        let backlog = self.pending_ns[ctx] / self.config.finish_estimate_parallelism;
        now_ns + backlog + self.isolated_estimate_ns(ctx, sref)
    }

    /// Dispatches queued stages onto idle stream slots (§IV-B3): high
    /// band → high streams; medium and low bands → low streams.
    fn dispatch(&mut self) {
        for ctx in 0..self.queues.len() {
            loop {
                let snap = self.engine.snapshot(ContextId(ctx));
                let mut dispatched = false;
                if snap.idle_high > 0 {
                    if let Some(sref) = self.pop_live(ctx, PopBand::ExactHigh) {
                        self.submit(ctx, StreamClass::High, sref);
                        dispatched = true;
                    }
                }
                let snap = self.engine.snapshot(ContextId(ctx));
                if snap.idle_low > 0 {
                    if let Some(sref) = self.pop_live(ctx, PopBand::AtMostMedium) {
                        self.submit(ctx, StreamClass::Low, sref);
                        dispatched = true;
                    } else if self.config.high_overflow_to_low {
                        if let Some(sref) = self.pop_live(ctx, PopBand::ExactHigh) {
                            self.submit(ctx, StreamClass::Low, sref);
                            dispatched = true;
                        }
                    }
                }
                if !dispatched {
                    break;
                }
            }
        }
    }

    /// Pops the next dispatchable stage from a context queue, discarding
    /// stale entries (jobs already aborted) and — when
    /// [`SgprsConfig::abort_hopeless`] is set — aborting jobs whose
    /// absolute deadline has already passed rather than serving stale
    /// frames.
    fn pop_live(&mut self, ctx: usize, band: PopBand) -> Option<StageRef> {
        loop {
            let entry = match band {
                PopBand::ExactHigh => self.queues[ctx].pop_exact(PriorityLevel::High),
                PopBand::AtMostMedium => self.queues[ctx]
                    .pop_at_most(PriorityLevel::Medium)
                    .map(|(_, e)| e),
            }?;
            let sref = entry.item;
            let key = (sref.task, sref.release_index);
            let Some(job) = self.active.get(&key) else {
                // The job was aborted while this stage sat in the queue.
                let est = self.isolated_estimate_ns(ctx, sref);
                self.pending_ns[ctx] = (self.pending_ns[ctx] - est).max(0.0);
                continue;
            };
            if self.config.abort_hopeless && self.engine.now() > job.absolute_deadline {
                let est = self.isolated_estimate_ns(ctx, sref);
                self.pending_ns[ctx] = (self.pending_ns[ctx] - est).max(0.0);
                self.abort_job(sref.task, sref.release_index);
                continue;
            }
            return Some(sref);
        }
    }

    /// Aborts a hopeless job: the frame is dropped, the task becomes free
    /// to take the freshest buffered frame immediately.
    fn abort_job(&mut self, task: usize, release_index: u64) {
        let Some(job) = self.active.remove(&(task, release_index)) else {
            return;
        };
        self.collector.record_drop(task, job.release);
        self.outstanding[task] = self.outstanding[task].saturating_sub(1);
        let now = self.engine.now();
        self.grab_buffered(task, now);
    }

    /// Admits the freshest buffered frame of `task` at instant `grab`, if
    /// one is waiting and the admission test passes (declined frames are
    /// dropped without consuming GPU time).
    fn grab_buffered(&mut self, task: usize, grab: SimTime) {
        if self.config.admission != Admission::FrameBuffer {
            return;
        }
        let Some(boundary) = self.buffered[task].take() else {
            return;
        };
        if !self.admission_ok(task, grab) {
            self.collector.record_skip(task, boundary);
            return;
        }
        let index = self.next_admit_index(task);
        self.admit(task, index, grab);
    }

    fn submit(&mut self, ctx: usize, class: StreamClass, sref: StageRef) {
        let label = format!(
            "τ{}#{}/s{}",
            sref.task, sref.release_index, sref.stage
        );
        let profile = self.tasks[sref.task].stage_profiles[sref.stage].clone();
        let est = self.isolated_estimate_ns(ctx, sref);
        let handle = self
            .engine
            .submit(ContextId(ctx), class, KernelDesc::new(label, profile))
            .expect("dispatch checked an idle stream existed");
        self.running.insert(handle, (sref, est));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{offline, ContextPoolSpec};
    use sgprs_dnn::{models, CostModel};
    use sgprs_rt::SimDuration;

    fn thirty_fps() -> SimDuration {
        SimDuration::from_micros(33_333)
    }

    fn compile(pool: &ContextPoolSpec, n: usize) -> Vec<CompiledTask> {
        let net = models::resnet18(1, 224);
        let task = offline::compile_network_task(
            "cam",
            &net,
            &CostModel::calibrated(),
            6,
            thirty_fps(),
            pool,
        )
        .unwrap();
        vec![task; n]
    }

    fn run_sgprs(pool: ContextPoolSpec, n: usize, secs: u64) -> RunMetrics {
        let tasks = compile(&pool, n);
        let mut s = SgprsScheduler::new(SgprsConfig::new(pool), tasks);
        s.run(SimTime::ZERO + SimDuration::from_secs(secs))
    }

    #[test]
    fn single_task_meets_every_deadline() {
        let m = run_sgprs(ContextPoolSpec::new(2, 1.0), 1, 2);
        assert!(m.is_miss_free(), "one 30-fps task must be trivially schedulable: {m:?}");
        assert!((m.total_fps - 30.0).abs() < 1.5, "fps {:.1}", m.total_fps);
    }

    #[test]
    fn light_load_scales_fps_linearly() {
        let m4 = run_sgprs(ContextPoolSpec::new(2, 1.5), 4, 2);
        assert!(m4.is_miss_free(), "{m4:?}");
        assert!((m4.total_fps - 120.0).abs() < 4.0, "fps {:.1}", m4.total_fps);
    }

    #[test]
    fn overload_saturates_but_keeps_serving() {
        let m = run_sgprs(ContextPoolSpec::new(3, 1.5), 30, 3);
        assert!(m.total_fps > 300.0, "saturated fps {:.0}", m.total_fps);
        assert!(m.dmr > 0.0, "30 tasks must overload the pool");
        assert!(m.dmr < 0.9, "SGPRS must degrade gracefully, dmr {:.2}", m.dmr);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_sgprs(ContextPoolSpec::new(2, 1.5), 8, 2);
        let b = run_sgprs(ContextPoolSpec::new(2, 1.5), 8, 2);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.late, b.late);
        assert_eq!(a.skipped, b.skipped);
    }

    #[test]
    fn fifo_ablation_runs_and_differs_or_matches_edf() {
        let pool = ContextPoolSpec::new(2, 1.5);
        let tasks = compile(&pool, 16);
        let mut cfg = SgprsConfig::new(pool.clone());
        cfg.queue_order = QueueOrder::Fifo;
        let mut s = SgprsScheduler::new(cfg, tasks.clone());
        let fifo = s.run(SimTime::ZERO + SimDuration::from_secs(2));
        let mut s = SgprsScheduler::new(SgprsConfig::new(pool), tasks);
        let edf = s.run(SimTime::ZERO + SimDuration::from_secs(2));
        // EDF should never be substantially worse on misses.
        assert!(edf.late + edf.skipped <= fifo.late + fifo.skipped + 5);
    }

    #[test]
    fn queue_all_admission_completes_more_but_later() {
        let pool = ContextPoolSpec::new(2, 1.0);
        let tasks = compile(&pool, 24);
        let mut cfg = SgprsConfig::new(pool);
        cfg.admission = Admission::QueueAll;
        let mut s = SgprsScheduler::new(cfg, tasks);
        let m = s.run(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(m.skipped, 0, "queue-all never skips");
        assert!(m.completed > 0);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_task_set_panics() {
        let _ = SgprsScheduler::new(SgprsConfig::new(ContextPoolSpec::new(2, 1.0)), vec![]);
    }

    #[test]
    fn tracing_records_kernels() {
        let pool = ContextPoolSpec::new(2, 1.0);
        let tasks = compile(&pool, 2);
        let mut cfg = SgprsConfig::new(pool);
        cfg.tracing = true;
        let mut s = SgprsScheduler::new(cfg, tasks);
        let _ = s.run(SimTime::ZERO + SimDuration::from_millis(200));
        let trace = s.engine().trace().expect("tracing enabled");
        assert!(!trace.is_empty());
    }
}
