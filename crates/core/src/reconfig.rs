//! A third comparison point: the *reconfiguring* spatial partitioner.
//!
//! The paper's headline is the **zero-configuration partition switch**:
//! SGPRS pre-creates an over-subscribed context pool once, so moving a
//! stage to another partition costs nothing. The natural alternative —
//! what MPS-based systems without a pool do — is to *resize* partitions as
//! the tenant population changes: whenever the number of active tasks
//! changes, tear the partitions down and rebuild them to match, stalling
//! the whole device for the reconfiguration window.
//!
//! This scheduler makes that cost explicit. It is otherwise *stronger*
//! than the naive baseline (it right-sizes partitions: one partition per
//! active task, up to a cap), so any loss against SGPRS is attributable
//! to the reconfiguration stalls alone — direct evidence for the value of
//! seamless switching.

use crate::{Admission, CompiledTask, MetricsCollector, NaiveConfig, RunMetrics};
use sgprs_gpu_sim::{
    ContextConfig, ContextId, DeviceEvent, GpuEngine, KernelDesc, KernelHandle, StreamClass,
};
use sgprs_rt::{ReleaseGenerator, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Configuration of the reconfiguring partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigConfig {
    /// Baseline knobs shared with the naive scheduler (device, admission,
    /// warm-up, seed).
    pub base: NaiveConfig,
    /// Device-wide stall charged for every repartitioning, in nanoseconds
    /// (MPS server restart / context re-creation; tens of milliseconds on
    /// real systems).
    pub repartition_stall_ns: u64,
    /// Maximum number of partitions the device may be split into.
    pub max_partitions: usize,
}

impl ReconfigConfig {
    /// Defaults: 100 ms stall per repartition (MPS server restart plus
    /// context re-creation and model re-initialisation), at most 8
    /// partitions.
    #[must_use]
    pub fn new() -> Self {
        ReconfigConfig {
            base: NaiveConfig::new(1),
            repartition_stall_ns: 100_000_000,
            max_partitions: 8,
        }
    }
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig::new()
    }
}

/// The reconfiguring spatial partitioner. See the module documentation for the algorithm details.
#[derive(Debug)]
pub struct ReconfigScheduler {
    config: ReconfigConfig,
    engine: GpuEngine,
    tasks: Vec<CompiledTask>,
    gens: Vec<ReleaseGenerator>,
    outstanding: Vec<u64>,
    buffered: Vec<Option<SimTime>>,
    /// Whole-network jobs waiting for a partition, FIFO across the device.
    queue: VecDeque<QueuedJob>,
    running: HashMap<KernelHandle, QueuedJob>,
    collector: MetricsCollector,
    /// Number of partitions the engine is currently built for.
    current_partitions: usize,
    /// The device is stalled (repartitioning) until this instant.
    stalled_until: SimTime,
    /// Distinct tasks that had work in the recent window (drives sizing).
    admit_seq: Vec<u64>,
    /// Tasks that have released at least one job (the tenant population
    /// the layout is sized for).
    seen: Vec<bool>,
    repartitions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedJob {
    task: usize,
    release_index: u64,
    release: SimTime,
    deadline: SimTime,
}

impl ReconfigScheduler {
    /// Creates the scheduler; the initial layout has one partition.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty or `max_partitions` is zero.
    #[must_use]
    pub fn new(config: ReconfigConfig, tasks: Vec<CompiledTask>) -> Self {
        assert!(!tasks.is_empty(), "need at least one task");
        assert!(config.max_partitions > 0, "need at least one partition");
        let engine = Self::build_engine(&config, 1);
        let gens = tasks
            .iter()
            .map(|t| ReleaseGenerator::new(SimTime::ZERO + t.spec.phase, t.spec.period))
            .collect();
        let names = tasks.iter().map(|t| t.spec.name.clone()).collect();
        let collector = MetricsCollector::new(names, SimTime::ZERO + config.base.warmup);
        let n_tasks = tasks.len();
        ReconfigScheduler {
            config,
            engine,
            tasks,
            gens,
            outstanding: vec![0; n_tasks],
            buffered: vec![None; n_tasks],
            queue: VecDeque::new(),
            running: HashMap::new(),
            collector,
            current_partitions: 1,
            stalled_until: SimTime::ZERO,
            admit_seq: vec![0; n_tasks],
            seen: vec![false; n_tasks],
            repartitions: 0,
        }
    }

    fn build_engine(config: &ReconfigConfig, partitions: usize) -> GpuEngine {
        let total = config.base.gpu.total_sms;
        let base = total / partitions as u32;
        let remainder = (total % partitions as u32) as usize;
        let mut builder = GpuEngine::builder(config.base.gpu.clone())
            .contention_model(config.base.contention)
            .seed(config.base.seed);
        for i in 0..partitions {
            let sm = base + u32::from(i < remainder);
            builder = builder.context(ContextConfig::new(sm.max(1)).with_streams(1, 0));
        }
        builder.build()
    }

    /// Number of repartitioning stalls incurred so far.
    #[must_use]
    pub fn repartition_count(&self) -> u64 {
        self.repartitions
    }

    /// Runs until `end`, returning the metrics over `warmup..end`.
    pub fn run(&mut self, end: SimTime) -> RunMetrics {
        loop {
            let next_release = self
                .gens
                .iter()
                .map(ReleaseGenerator::next_release)
                .min()
                .expect("at least one task");
            let next_device = self.engine.next_event_time();
            let mut next = match next_device {
                Some(d) if d < next_release => d,
                _ => next_release,
            };
            if self.stalled_until > self.engine.now() && self.stalled_until < next {
                next = self.stalled_until;
            }
            if next > end {
                break;
            }
            let events = self.engine.advance_to(next);
            self.handle_events(&events);
            if next_release <= next {
                self.do_releases(next);
            }
            self.maybe_repartition(next);
            self.dispatch();
        }
        let events = self.engine.advance_to(end);
        self.handle_events(&events);
        let names = self.tasks.iter().map(|t| t.spec.name.clone()).collect();
        let fresh = MetricsCollector::new(names, SimTime::ZERO + self.config.base.warmup);
        std::mem::replace(&mut self.collector, fresh).finish(end)
    }

    /// The partition count the current tenant population wants: one
    /// partition per tenant that has ever released work, capped.
    fn desired_partitions(&self) -> usize {
        let tenants = self.seen.iter().filter(|&&s| s).count().max(1);
        tenants.min(self.config.max_partitions)
    }

    /// Rebuilds the context layout when the desired partition count
    /// changed, charging the device-wide stall. Only possible when the
    /// device is idle (in-flight kernels cannot survive a repartition);
    /// otherwise the repartition is deferred to the next idle instant.
    fn maybe_repartition(&mut self, now: SimTime) {
        let desired = self.desired_partitions();
        if desired == self.current_partitions {
            return;
        }
        if !self.running.is_empty() {
            return; // defer until the device drains
        }
        self.engine = Self::build_engine(&self.config, desired);
        // The fresh engine starts at t=0; bring it to `now` plus the stall.
        let stall = SimDuration::from_nanos(self.config.repartition_stall_ns);
        self.stalled_until = now + stall;
        self.engine.advance_to(self.stalled_until);
        self.current_partitions = desired;
        self.repartitions += 1;
    }

    fn do_releases(&mut self, now: SimTime) {
        for task_idx in 0..self.tasks.len() {
            while self.gens[task_idx].next_release() <= now {
                let release = self.gens[task_idx].next_release();
                self.gens[task_idx].advance();
                self.seen[task_idx] = true;
                self.collector.record_release(task_idx, release);
                let busy = self.outstanding[task_idx] > 0;
                if busy {
                    match self.config.base.admission {
                        Admission::SkipIfBusy => {
                            self.collector.record_skip(task_idx, release);
                            continue;
                        }
                        Admission::FrameBuffer => {
                            if let Some(stale) = self.buffered[task_idx].replace(release)
                            {
                                self.collector.record_skip(task_idx, stale);
                            }
                            continue;
                        }
                        Admission::QueueAll => {}
                    }
                }
                self.admit(task_idx, release);
            }
        }
    }

    fn admit(&mut self, task_idx: usize, release: SimTime) {
        let index = self.admit_seq[task_idx];
        self.admit_seq[task_idx] += 1;
        self.outstanding[task_idx] += 1;
        self.queue.push_back(QueuedJob {
            task: task_idx,
            release_index: index,
            release,
            deadline: release + self.tasks[task_idx].spec.deadline,
        });
    }

    fn handle_events(&mut self, events: &[DeviceEvent]) {
        for ev in events {
            let Some(job) = self.running.remove(&ev.kernel) else {
                continue;
            };
            self.collector.record_completion(
                job.task,
                job.release,
                ev.finished_at,
                job.deadline,
            );
            self.outstanding[job.task] = self.outstanding[job.task].saturating_sub(1);
            if self.config.base.admission == Admission::FrameBuffer {
                if let Some(_boundary) = self.buffered[job.task].take() {
                    self.admit(job.task, ev.finished_at);
                }
            }
        }
    }

    fn dispatch(&mut self) {
        if self.engine.now() < self.stalled_until {
            return; // repartition in progress
        }
        for ctx in 0..self.engine.context_count() {
            if self.engine.snapshot(ContextId(ctx)).resident > 0 {
                continue;
            }
            let Some(job) = self.queue.pop_front() else {
                return;
            };
            let label = format!("τ{}#{}", job.task, job.release_index);
            let desc = KernelDesc::new(label, self.tasks[job.task].whole_profile.clone());
            let handle = self
                .engine
                .submit(ContextId(ctx), StreamClass::High, desc)
                .expect("partition was idle");
            self.running.insert(handle, job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{offline, ContextPoolSpec};
    use sgprs_dnn::{models, CostModel};

    fn compile(n: usize) -> Vec<CompiledTask> {
        let net = models::resnet18(1, 224);
        let task = offline::compile_network_task(
            "cam",
            &net,
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            &ContextPoolSpec::new(2, 1.0),
        )
        .unwrap();
        (0..n)
            .map(|i| {
                let mut t = task.clone();
                t.spec.name = format!("cam-{i}");
                t
            })
            .collect()
    }

    #[test]
    fn single_task_schedules_after_initial_repartition() {
        let mut s = ReconfigScheduler::new(ReconfigConfig::new(), compile(1));
        let m = s.run(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(m.total_fps > 25.0, "{m:?}");
    }

    #[test]
    fn growing_tenant_population_forces_repartitions() {
        let mut s = ReconfigScheduler::new(ReconfigConfig::new(), compile(6));
        let _ = s.run(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(
            s.repartition_count() >= 1,
            "six tenants cannot fit the initial single partition"
        );
    }

    #[test]
    fn repartition_stalls_cost_against_sgprs_under_churn() {
        // Tenants arriving over time: each arrival changes the desired
        // partition count, so the reconfiguring partitioner stalls the
        // whole device per arrival while SGPRS's pre-created pool absorbs
        // the churn with zero-configuration switches.
        let mut tasks = compile(10);
        for (i, t) in tasks.iter_mut().enumerate() {
            t.spec.phase = SimDuration::from_millis(600 + 150 * i as u64);
        }
        let end = SimTime::ZERO + SimDuration::from_secs(3);
        let mut rec = ReconfigScheduler::new(ReconfigConfig::new(), tasks.clone());
        let rec_m = rec.run(end);
        assert!(
            rec.repartition_count() >= 4,
            "churn must force repeated repartitions, got {}",
            rec.repartition_count()
        );
        let pool = ContextPoolSpec::new(2, 1.5);
        let mut sg = crate::SgprsScheduler::new(crate::SgprsConfig::new(pool), tasks);
        let sg_m = sg.run(end);
        let sg_misses = sg_m.late + sg_m.skipped + sg_m.dropped;
        let rec_misses = rec_m.late + rec_m.skipped + rec_m.dropped;
        assert!(
            sg_misses < rec_misses,
            "seamless switching must miss fewer deadlines: sgprs {sg_misses} vs reconfig {rec_misses}"
        );
    }

    #[test]
    fn max_partitions_caps_the_layout() {
        let mut cfg = ReconfigConfig::new();
        cfg.max_partitions = 2;
        let mut s = ReconfigScheduler::new(cfg, compile(10));
        let _ = s.run(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(s.current_partitions <= 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = ReconfigScheduler::new(ReconfigConfig::new(), compile(5));
            s.run(SimTime::ZERO + SimDuration::from_secs(1))
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.late, b.late);
    }
}
