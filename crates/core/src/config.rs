//! Scheduler configuration: context pools, admission, and ablation knobs.

use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::{ContentionModel, GpuSpec};

/// The context pool of §II: `np` CUDA contexts whose SM allocations sum to
/// `os × total_sms` (`os` is the over-subscription level of §V, written
/// `SGPRS os` in the figures).
///
/// # Example
///
/// ```
/// use sgprs_core::ContextPoolSpec;
///
/// // Scenario 2, 1.5x over-subscription: three contexts of 34 SMs each.
/// let pool = ContextPoolSpec::new(3, 1.5);
/// assert_eq!(pool.sm_allocations(), vec![34, 34, 34]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextPoolSpec {
    /// Number of contexts `np`.
    pub contexts: usize,
    /// Over-subscription factor `os` (1.0 = exact partition of the GPU).
    pub oversubscription: f64,
    /// The device being partitioned.
    pub gpu: GpuSpec,
}

impl ContextPoolSpec {
    /// A pool of `contexts` contexts at over-subscription `os` on the
    /// paper's RTX 2080 Ti.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or `os` is not a positive finite
    /// number.
    #[must_use]
    pub fn new(contexts: usize, oversubscription: f64) -> Self {
        assert!(contexts > 0, "a context pool needs at least one context");
        assert!(
            oversubscription.is_finite() && oversubscription > 0.0,
            "over-subscription must be positive, got {oversubscription}"
        );
        ContextPoolSpec {
            contexts,
            oversubscription,
            gpu: GpuSpec::rtx_2080_ti(),
        }
    }

    /// Replaces the device.
    #[must_use]
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Per-context SM allocations: `os × total_sms` distributed as evenly
    /// as possible, each context capped at the physical SM count.
    ///
    /// Earlier contexts receive the remainder, so allocations differ by at
    /// most one SM.
    #[must_use]
    pub fn sm_allocations(&self) -> Vec<u32> {
        let total = (self.oversubscription * f64::from(self.gpu.total_sms)).round() as u64;
        let n = self.contexts as u64;
        let base = total / n;
        let remainder = (total % n) as usize;
        (0..self.contexts)
            .map(|i| {
                let sm = base + u64::from(i < remainder);
                (sm.min(u64::from(self.gpu.total_sms))) as u32
            })
            .collect()
    }

    /// The smallest context allocation (used as the pessimistic WCET
    /// profiling reference).
    #[must_use]
    pub fn min_sm_allocation(&self) -> u32 {
        self.sm_allocations().into_iter().min().unwrap_or(0)
    }
}

/// Order used to serve each priority band's ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueOrder {
    /// Earliest deadline first — the paper's choice (§IV-B3).
    Edf,
    /// Arrival order — ablation baseline.
    Fifo,
}

/// What happens when a period expires while the task's previous job is
/// still in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// A single-slot frame buffer, newest frame wins: while a job is in
    /// flight the latest frame waits in the buffer (replacing — and
    /// thereby dropping — any staler one); when the job completes, the
    /// buffered frame is grabbed immediately and its deadline starts at
    /// the grab. This models an asynchronous LibTorch inference client and
    /// keeps the device work-conserving under overload, which is what
    /// lets SGPRS *sustain* total FPS past the pivot point (§V).
    FrameBuffer,
    /// Skip the release (drop the frame) outright when the previous job is
    /// still in flight — a strictly self-throttling client. Under
    /// overload the release/completion phase-locking leaves the device
    /// partially idle, so total FPS sags below capacity.
    SkipIfBusy,
    /// Release anyway and let jobs queue up (unbounded backlog).
    QueueAll,
}

/// Configuration of the SGPRS online scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgprsConfig {
    /// The context pool.
    pub pool: ContextPoolSpec,
    /// Contention model for the over-subscribed pool.
    pub contention: ContentionModel,
    /// Queue discipline within each priority band (EDF in the paper).
    pub queue_order: QueueOrder,
    /// Enable the medium-priority promotion rule of §IV-B3.
    pub medium_promotion: bool,
    /// Allow high-priority stages to overflow onto idle low-priority
    /// streams when both high streams are busy (not in the paper; off by
    /// default).
    pub high_overflow_to_low: bool,
    /// Release policy when the previous job is unfinished.
    pub admission: Admission,
    /// Abort queued jobs whose absolute deadline already passed. Off by
    /// default: a marginally late frame is still worth delivering (it
    /// counts toward total FPS), and aborting mid-chain wastes the GPU
    /// time its earlier stages already consumed. Available for ablation.
    pub abort_hopeless: bool,
    /// Decline a frame at admission when the backlog estimate says its
    /// deadline cannot be met (the frame is dropped *before* wasting any
    /// GPU time on it). Together with `abort_hopeless` this keeps admitted
    /// jobs on time under overload, so total FPS is sustained while the
    /// miss rate grows only with the drop rate — the paper's post-pivot
    /// behaviour. The naive baseline has no such control.
    pub admission_control: bool,
    /// Divisor applied to a context's outstanding-work estimate when
    /// predicting finish times (accounts for intra-context concurrency).
    pub finish_estimate_parallelism: f64,
    /// Deterministic seed for the device's execution-time jitter.
    pub seed: u64,
    /// Measurement warm-up: jobs released before this offset are ignored
    /// by the metrics.
    pub warmup: sgprs_rt::SimDuration,
    /// Record a device timeline (Chrome-trace exportable) during the run.
    pub tracing: bool,
}

impl SgprsConfig {
    /// The paper-faithful configuration for a given pool.
    #[must_use]
    pub fn new(pool: ContextPoolSpec) -> Self {
        SgprsConfig {
            pool,
            contention: ContentionModel::calibrated(),
            queue_order: QueueOrder::Edf,
            medium_promotion: true,
            high_overflow_to_low: false,
            admission: Admission::FrameBuffer,
            abort_hopeless: false,
            admission_control: true,
            finish_estimate_parallelism: 1.5,
            seed: 0x5672_5053,
            warmup: sgprs_rt::SimDuration::from_millis(500),
            tracing: false,
        }
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Configuration of the naive spatial-partitioning baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveConfig {
    /// Number of spatial partitions (the naive scheduler never
    /// over-subscribes: allocations always sum to the physical SM count).
    pub contexts: usize,
    /// The device.
    pub gpu: GpuSpec,
    /// Contention model (only relevant for jitter; the naive pool cannot
    /// overcommit).
    pub contention: ContentionModel,
    /// Base cost of reconfiguring a partition to another tenant, in
    /// nanoseconds — the cost SGPRS's zero-configuration switch avoids.
    pub partition_switch_ns: f64,
    /// Relative growth of the switch cost per additional tenant sharing
    /// the context (cold caches, weight re-upload).
    pub switch_growth_per_tenant: f64,
    /// Release policy.
    pub admission: Admission,
    /// Deterministic jitter seed.
    pub seed: u64,
    /// Measurement warm-up.
    pub warmup: sgprs_rt::SimDuration,
    /// Record a device timeline during the run.
    pub tracing: bool,
}

impl NaiveConfig {
    /// The baseline configuration with `contexts` equal partitions.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    #[must_use]
    pub fn new(contexts: usize) -> Self {
        assert!(contexts > 0, "need at least one partition");
        NaiveConfig {
            contexts,
            gpu: GpuSpec::rtx_2080_ti(),
            contention: ContentionModel::calibrated(),
            partition_switch_ns: 250_000.0,
            switch_growth_per_tenant: 0.04,
            admission: Admission::FrameBuffer,
            seed: 0x5672_5053,
            warmup: sgprs_rt::SimDuration::from_millis(500),
            tracing: false,
        }
    }

    /// Per-context SM allocations (an exact partition of the GPU).
    #[must_use]
    pub fn sm_allocations(&self) -> Vec<u32> {
        ContextPoolSpec {
            contexts: self.contexts,
            oversubscription: 1.0,
            gpu: self.gpu.clone(),
        }
        .sm_allocations()
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The switch cost when `tenants` distinct tasks share a context.
    #[must_use]
    pub fn switch_cost_ns(&self, tenants: usize) -> f64 {
        let extra = tenants.saturating_sub(1) as f64;
        self.partition_switch_ns * (1.0 + self.switch_growth_per_tenant * extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pool_allocations() {
        // Scenario 1: np=2.
        assert_eq!(ContextPoolSpec::new(2, 1.0).sm_allocations(), vec![34, 34]);
        assert_eq!(ContextPoolSpec::new(2, 1.5).sm_allocations(), vec![51, 51]);
        assert_eq!(ContextPoolSpec::new(2, 2.0).sm_allocations(), vec![68, 68]);
        // Scenario 2: np=3.
        assert_eq!(ContextPoolSpec::new(3, 1.0).sm_allocations(), vec![23, 23, 22]);
        assert_eq!(ContextPoolSpec::new(3, 1.5).sm_allocations(), vec![34, 34, 34]);
        assert_eq!(ContextPoolSpec::new(3, 2.0).sm_allocations(), vec![46, 45, 45]);
    }

    #[test]
    fn allocations_never_exceed_physical_sms() {
        let pool = ContextPoolSpec::new(1, 3.0);
        assert_eq!(pool.sm_allocations(), vec![68]);
    }

    #[test]
    fn min_allocation_is_the_smallest() {
        assert_eq!(ContextPoolSpec::new(3, 1.0).min_sm_allocation(), 22);
        assert_eq!(ContextPoolSpec::new(2, 1.5).min_sm_allocation(), 51);
    }

    #[test]
    #[should_panic(expected = "at least one context")]
    fn zero_contexts_panics() {
        let _ = ContextPoolSpec::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_oversubscription_panics() {
        let _ = ContextPoolSpec::new(2, -1.0);
    }

    #[test]
    fn naive_partitions_the_gpu_exactly() {
        let cfg = NaiveConfig::new(3);
        let total: u32 = cfg.sm_allocations().iter().sum();
        assert_eq!(total, 68);
    }

    #[test]
    fn switch_cost_grows_with_tenants() {
        let cfg = NaiveConfig::new(2);
        assert!(cfg.switch_cost_ns(1) < cfg.switch_cost_ns(4));
        assert_eq!(cfg.switch_cost_ns(0), cfg.switch_cost_ns(1));
    }

    #[test]
    fn default_sgprs_config_is_paper_faithful() {
        let cfg = SgprsConfig::new(ContextPoolSpec::new(2, 1.5));
        assert_eq!(cfg.queue_order, QueueOrder::Edf);
        assert!(cfg.medium_promotion);
        assert!(!cfg.high_overflow_to_low);
        assert_eq!(cfg.admission, Admission::FrameBuffer);
    }
}
