//! Compiled tasks: the offline phase's output.

use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::WorkProfile;
use sgprs_rt::PeriodicTaskSpec;

/// A periodic DNN task after the offline phase: timing parameters plus the
/// per-stage GPU work profiles the simulator executes.
///
/// `spec.stages[j]` and `stage_profiles[j]` describe the same stage: the
/// former carries the real-time view (WCET `Ci^j`, virtual deadline `Di^j`,
/// offline priority), the latter the device view (operation mix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledTask {
    /// The real-time task specification with all offline fields assigned.
    pub spec: PeriodicTaskSpec,
    /// One work profile per stage, aligned with `spec.stages`.
    pub stage_profiles: Vec<WorkProfile>,
    /// The whole network as a single profile (monolithic execution — what
    /// the naive baseline submits).
    pub whole_profile: WorkProfile,
}

impl CompiledTask {
    /// The task's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.spec.stages.len()
    }

    /// Validates the internal alignment invariants (used by tests and
    /// debug assertions).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.spec.stages.len() == self.stage_profiles.len()
            && !self.whole_profile.is_empty()
            && self
                .stage_profiles
                .iter()
                .all(|p| !p.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use crate::ContextPoolSpec;
    use sgprs_dnn::{models, CostModel};
    use sgprs_rt::SimDuration;

    #[test]
    fn compiled_resnet18_is_consistent() {
        let task = crate::offline::compile_network_task(
            "t",
            &models::resnet18(1, 224),
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            &ContextPoolSpec::new(2, 1.0),
        )
        .unwrap();
        assert!(task.is_consistent());
        assert_eq!(task.stage_count(), 6);
        assert_eq!(task.name(), "t");
    }
}
