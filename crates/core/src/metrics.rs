//! Evaluation metrics: total FPS and deadline-miss rate (§V).
//!
//! The paper compares schedulers on two metrics over a measurement window:
//!
//! * **Total FPS** — completed inferences per second across all tasks.
//! * **DMR** — the fraction of releases that missed their deadline, where
//!   a *skipped* release (the previous job was still in flight, so the
//!   frame was dropped) counts as a miss, and a job that completes after
//!   its absolute deadline counts as a miss.

use serde::{Deserialize, Serialize};
use sgprs_rt::{SimDuration, SimTime};

/// Aggregated results of one scheduler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Length of the measurement window (excluding warm-up).
    pub window: SimDuration,
    /// Releases inside the window (including skipped ones).
    pub released: u64,
    /// Jobs completed inside the window.
    pub completed: u64,
    /// Completed jobs that met their deadline.
    pub met: u64,
    /// Completed jobs that missed their deadline.
    pub late: u64,
    /// Releases skipped because the previous job was still in flight.
    pub skipped: u64,
    /// Admitted jobs aborted because their deadline passed before they
    /// finished (SGPRS drops hopeless frames instead of serving stale
    /// work; the naive baseline never does — the domino effect).
    pub dropped: u64,
    /// Total frames per second: `completed / window`.
    pub total_fps: f64,
    /// Deadline-miss rate: `(late + skipped + dropped) / released`.
    pub dmr: f64,
    /// Median response time of completed jobs.
    pub response_p50: SimDuration,
    /// 95th-percentile response time of completed jobs.
    pub response_p95: SimDuration,
    /// Worst observed response time.
    pub response_max: SimDuration,
    /// Every completed job's response time in nanoseconds, sorted
    /// ascending — the raw distribution behind the percentile fields,
    /// kept so downstream aggregators (the fleet's telemetry sketches)
    /// can fold full distributions instead of re-deriving them from
    /// three points.
    pub response_samples_ns: Vec<u64>,
    /// Per-task breakdown, indexed by task position in the input set.
    pub per_task: Vec<TaskMetrics>,
}

impl RunMetrics {
    /// `true` when not a single release missed its deadline — the
    /// condition defining the paper's *pivot point* (the largest task
    /// count for which this still holds).
    #[must_use]
    pub fn is_miss_free(&self) -> bool {
        self.late == 0 && self.skipped == 0 && self.dropped == 0
    }
}

/// Per-task slice of [`RunMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Task name.
    pub name: String,
    /// Releases inside the window.
    pub released: u64,
    /// Completions inside the window.
    pub completed: u64,
    /// Deadline misses (late + skipped).
    pub missed: u64,
    /// Achieved frames per second.
    pub fps: f64,
}

/// Streaming collector turning per-job outcomes into [`RunMetrics`].
///
/// Both schedulers feed it the same three event kinds (release, skip,
/// completion), so the paper's metrics are computed identically for SGPRS
/// and the naive baseline.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    warmup_end: SimTime,
    task_names: Vec<String>,
    released: Vec<u64>,
    completed: Vec<u64>,
    met: Vec<u64>,
    late: Vec<u64>,
    skipped: Vec<u64>,
    dropped: Vec<u64>,
    responses_ns: Vec<u64>,
}

impl MetricsCollector {
    /// Creates a collector for tasks named `task_names`; jobs released
    /// before `warmup_end` are ignored entirely.
    #[must_use]
    pub fn new(task_names: Vec<String>, warmup_end: SimTime) -> Self {
        let n = task_names.len();
        MetricsCollector {
            warmup_end,
            task_names,
            released: vec![0; n],
            completed: vec![0; n],
            met: vec![0; n],
            late: vec![0; n],
            skipped: vec![0; n],
            dropped: vec![0; n],
            responses_ns: Vec::new(),
        }
    }

    /// `true` if a release at `t` falls inside the measurement window.
    #[must_use]
    pub fn in_window(&self, release: SimTime) -> bool {
        release >= self.warmup_end
    }

    /// Records a release (admitted or not) of task `task` at `release`.
    pub fn record_release(&mut self, task: usize, release: SimTime) {
        if self.in_window(release) {
            self.released[task] += 1;
        }
    }

    /// Records a skipped release (frame drop) of task `task`.
    pub fn record_skip(&mut self, task: usize, release: SimTime) {
        if self.in_window(release) {
            self.skipped[task] += 1;
        }
    }

    /// Records an admitted job of `task` (released at `release`) that was
    /// aborted because its deadline passed before it could finish.
    pub fn record_drop(&mut self, task: usize, release: SimTime) {
        if self.in_window(release) {
            self.dropped[task] += 1;
        }
    }

    /// Records a completion of a job of `task` released at `release` with
    /// the given completion instant and absolute deadline.
    pub fn record_completion(
        &mut self,
        task: usize,
        release: SimTime,
        completed: SimTime,
        deadline: SimTime,
    ) {
        if !self.in_window(release) {
            return;
        }
        self.completed[task] += 1;
        if completed <= deadline {
            self.met[task] += 1;
        } else {
            self.late[task] += 1;
        }
        self.responses_ns
            .push(completed.duration_since(release).as_nanos());
    }

    /// Finalises the metrics for a run that ended at `end`.
    #[must_use]
    pub fn finish(mut self, end: SimTime) -> RunMetrics {
        let window = end.duration_since(self.warmup_end);
        let window_s = window.as_secs_f64();
        let released: u64 = self.released.iter().sum();
        let completed: u64 = self.completed.iter().sum();
        let met: u64 = self.met.iter().sum();
        let late: u64 = self.late.iter().sum();
        let skipped: u64 = self.skipped.iter().sum();
        let dropped: u64 = self.dropped.iter().sum();
        self.responses_ns.sort_unstable();
        let pct = |p: f64| -> SimDuration {
            if self.responses_ns.is_empty() {
                return SimDuration::ZERO;
            }
            let idx = ((self.responses_ns.len() as f64 - 1.0) * p).round() as usize;
            SimDuration::from_nanos(self.responses_ns[idx])
        };
        let per_task = self
            .task_names
            .iter()
            .enumerate()
            .map(|(i, name)| TaskMetrics {
                name: name.clone(),
                released: self.released[i],
                completed: self.completed[i],
                missed: self.late[i] + self.skipped[i] + self.dropped[i],
                fps: if window_s > 0.0 {
                    self.completed[i] as f64 / window_s
                } else {
                    0.0
                },
            })
            .collect();
        RunMetrics {
            window,
            released,
            completed,
            met,
            late,
            skipped,
            dropped,
            total_fps: if window_s > 0.0 {
                completed as f64 / window_s
            } else {
                0.0
            },
            dmr: if released > 0 {
                (late + skipped + dropped) as f64 / released as f64
            } else {
                0.0
            },
            response_p50: pct(0.50),
            response_p95: pct(0.95),
            response_max: pct(1.0),
            response_samples_ns: self.responses_ns,
            per_task,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn collector() -> MetricsCollector {
        MetricsCollector::new(vec!["a".into(), "b".into()], t(100))
    }

    #[test]
    fn warmup_releases_are_ignored() {
        let mut c = collector();
        c.record_release(0, t(50));
        c.record_completion(0, t(50), t(60), t(80));
        let m = c.finish(t(1_100));
        assert_eq!(m.released, 0);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn fps_and_dmr_are_computed_over_the_window() {
        let mut c = collector();
        for i in 0..10 {
            let rel = t(100 + i * 100);
            c.record_release(0, rel);
            // Every second job is late.
            let deadline = rel + SimDuration::from_millis(50);
            let completed = if i % 2 == 0 {
                rel + SimDuration::from_millis(40)
            } else {
                rel + SimDuration::from_millis(60)
            };
            c.record_completion(0, rel, completed, deadline);
        }
        let m = c.finish(t(1_100)); // 1-second window
        assert_eq!(m.released, 10);
        assert_eq!(m.completed, 10);
        assert_eq!(m.met, 5);
        assert_eq!(m.late, 5);
        assert!((m.total_fps - 10.0).abs() < 1e-9);
        assert!((m.dmr - 0.5).abs() < 1e-9);
        assert!(!m.is_miss_free());
    }

    #[test]
    fn skips_count_as_misses() {
        let mut c = collector();
        c.record_release(1, t(200));
        c.record_skip(1, t(200));
        let m = c.finish(t(1_100));
        assert_eq!(m.released, 1);
        assert_eq!(m.skipped, 1);
        assert!((m.dmr - 1.0).abs() < 1e-9);
        assert_eq!(m.per_task[1].missed, 1);
        assert_eq!(m.per_task[0].missed, 0);
    }

    #[test]
    fn percentiles_track_the_response_distribution() {
        let mut c = collector();
        for i in 1..=100u64 {
            let rel = t(100);
            c.record_release(0, rel);
            c.record_completion(0, rel, rel + SimDuration::from_millis(i), rel + SimDuration::from_secs(1));
        }
        let m = c.finish(t(1_100));
        // Nearest-rank convention: index = round((n-1)·p).
        assert_eq!(m.response_p50, SimDuration::from_millis(51));
        assert_eq!(m.response_p95, SimDuration::from_millis(95));
        assert_eq!(m.response_max, SimDuration::from_millis(100));
        assert_eq!(m.response_samples_ns.len(), 100);
        assert!(
            m.response_samples_ns.windows(2).all(|w| w[0] <= w[1]),
            "the raw distribution is exported sorted"
        );
    }

    #[test]
    fn miss_free_run_is_reported() {
        let mut c = collector();
        c.record_release(0, t(200));
        c.record_completion(0, t(200), t(210), t(233));
        let m = c.finish(t(1_100));
        assert!(m.is_miss_free());
        assert_eq!(m.met, 1);
    }

    #[test]
    fn empty_run_has_zero_metrics() {
        let m = collector().finish(t(1_100));
        assert_eq!(m.total_fps, 0.0);
        assert_eq!(m.dmr, 0.0);
        assert_eq!(m.response_max, SimDuration::ZERO);
    }

    #[test]
    fn drops_count_as_misses_but_not_completions() {
        let mut c = collector();
        c.record_release(0, t(200));
        c.record_drop(0, t(200));
        let m = c.finish(t(1_100));
        assert_eq!(m.dropped, 1);
        assert_eq!(m.completed, 0);
        assert!((m.dmr - 1.0).abs() < 1e-9);
        assert!(!m.is_miss_free());
        assert_eq!(m.per_task[0].missed, 1);
    }

    #[test]
    fn drops_outside_the_window_are_ignored() {
        let mut c = collector();
        c.record_drop(0, t(50)); // before warm-up
        let m = c.finish(t(1_100));
        assert_eq!(m.dropped, 0);
        assert!(m.is_miss_free());
    }

    #[test]
    fn per_task_fps_sums_to_total() {
        let mut c = collector();
        for task in 0..2 {
            for i in 0..5 {
                let rel = t(100 + i * 100);
                c.record_release(task, rel);
                c.record_completion(task, rel, rel + SimDuration::from_millis(10), rel + SimDuration::from_millis(33));
            }
        }
        let m = c.finish(t(1_100));
        let sum: f64 = m.per_task.iter().map(|t| t.fps).sum();
        assert!((sum - m.total_fps).abs() < 1e-9);
    }
}
