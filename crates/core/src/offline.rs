//! The offline phase of SGPRS (§IV-A).
//!
//! Three steps, executed once before the system goes online:
//!
//! 1. **Stage WCET measurement** (§IV-A2): each stage is profiled *in
//!    isolation* on a context of the pool's (smallest) SM allocation; a
//!    pessimism margin covers jitter the profiling run did not observe.
//! 2. **Virtual deadline assignment** (§IV-A2): the task's relative
//!    deadline `Di` is distributed over its stages proportionally to their
//!    WCET share, so `Σj Di^j = Di` exactly.
//! 3. **Two-level priority assignment** (§IV-A1): the final stage of every
//!    task gets high priority, all earlier stages low priority.

use crate::{CompiledTask, ContextPoolSpec};
use sgprs_dnn::{partition, CostModel, DnnError, Network, Stage};
use sgprs_gpu_sim::{KernelDesc, SpeedupModel, WorkProfile};
use sgprs_rt::{PeriodicTaskSpec, PriorityAssignment, SimDuration, StageSpec};

/// Pessimism margin applied on top of the profiled stage time (the paper
/// measures WCETs, which upper-bound observed times; 10 % covers the
/// simulator's bounded jitter).
pub const WCET_PESSIMISM: f64 = 1.10;

/// Profiles one work profile in isolation at `sm_alloc` SMs and returns
/// its pessimistic WCET.
///
/// This mirrors the paper's offline measurement: run the stage alone on
/// the partition it will execute on and take the worst case.
#[must_use]
pub fn profile_wcet(
    profile: &WorkProfile,
    speedup: &SpeedupModel,
    launch_overhead_ns: u64,
    sm_alloc: u32,
) -> SimDuration {
    let ns = launch_overhead_ns as f64 + profile.duration_ns_at(speedup, f64::from(sm_alloc));
    SimDuration::from_nanos((ns * WCET_PESSIMISM).round() as u64)
}

/// Distributes the relative deadline over stages proportionally to their
/// WCETs (§IV-A2), guaranteeing the shares sum to the deadline exactly.
#[must_use]
pub fn assign_virtual_deadlines(wcets: &[SimDuration], deadline: SimDuration) -> Vec<SimDuration> {
    let total: u128 = wcets.iter().map(|w| u128::from(w.as_nanos())).sum();
    if total == 0 || wcets.is_empty() {
        return vec![SimDuration::ZERO; wcets.len()];
    }
    let d = u128::from(deadline.as_nanos());
    let mut out = Vec::with_capacity(wcets.len());
    let mut cum_wcet: u128 = 0;
    let mut assigned: u128 = 0;
    for w in wcets {
        cum_wcet += u128::from(w.as_nanos());
        // Cumulative share rounds, per-stage share is the difference:
        // avoids drift so the shares sum exactly to the deadline.
        let cum_share = d * cum_wcet / total;
        out.push(SimDuration::from_nanos((cum_share - assigned) as u64));
        assigned = cum_share;
    }
    out
}

/// Compiles a pre-partitioned stage list into a [`CompiledTask`].
///
/// `period` doubles as the implicit relative deadline, as in the paper's
/// evaluation (explicit deadlines equal to the 30-fps period).
#[must_use]
pub fn compile_stages(
    name: &str,
    stages: &[Stage],
    whole_profile: WorkProfile,
    period: SimDuration,
    pool: &ContextPoolSpec,
) -> CompiledTask {
    let speedup = SpeedupModel::calibrated_rtx_2080_ti();
    let reference_sm = pool.min_sm_allocation();
    let wcets: Vec<SimDuration> = stages
        .iter()
        .map(|s| profile_wcet(&s.profile, &speedup, pool.gpu.launch_overhead_ns, reference_sm))
        .collect();
    let virtual_deadlines = assign_virtual_deadlines(&wcets, period);

    let mut builder = PeriodicTaskSpec::builder(name).period(period).deadline(period);
    for (j, stage) in stages.iter().enumerate() {
        let mut spec = StageSpec::new(stage.name.clone(), wcets[j])
            .with_work(stage.profile.total_single_sm_ns());
        if j > 0 {
            spec.predecessors = vec![j - 1];
        }
        spec.virtual_deadline = virtual_deadlines[j];
        builder = builder.stage(spec);
    }
    let mut spec = builder
        .build()
        .expect("offline-compiled tasks are valid by construction");
    PriorityAssignment::assign(&mut spec);
    CompiledTask {
        spec,
        stage_profiles: stages.iter().map(|s| s.profile.clone()).collect(),
        whole_profile,
    }
}

/// Compiles a network into a `k_stages`-stage periodic task: partition,
/// profile, assign virtual deadlines and priorities.
///
/// # Errors
///
/// Propagates [`DnnError::InvalidPartition`] for degenerate stage counts.
pub fn compile_network_task(
    name: &str,
    net: &Network,
    cost: &CostModel,
    k_stages: usize,
    period: SimDuration,
    pool: &ContextPoolSpec,
) -> Result<CompiledTask, DnnError> {
    let stages = partition::by_count(net, cost, k_stages)?;
    Ok(compile_stages(
        name,
        &stages,
        net.work_profile(cost),
        period,
        pool,
    ))
}

/// Convenience: the estimated isolated execution time of a compiled
/// task's whole network on `sm_alloc` SMs (the naive baseline's job
/// length).
#[must_use]
pub fn whole_task_duration(
    task: &CompiledTask,
    speedup: &SpeedupModel,
    launch_overhead_ns: u64,
    sm_alloc: u32,
) -> SimDuration {
    let desc = KernelDesc::new(task.name(), task.whole_profile.clone());
    let ns = launch_overhead_ns as f64
        + desc.work.duration_ns_at(speedup, f64::from(sm_alloc));
    SimDuration::from_nanos(ns.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgprs_dnn::models;
    use sgprs_rt::PriorityLevel;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn compile_default() -> CompiledTask {
        compile_network_task(
            "t",
            &models::resnet18(1, 224),
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            &ContextPoolSpec::new(2, 1.0),
        )
        .unwrap()
    }

    #[test]
    fn virtual_deadlines_sum_to_the_deadline() {
        let wcets = vec![ms(1), ms(2), ms(3), ms(5)];
        let vds = assign_virtual_deadlines(&wcets, ms(33));
        let sum = vds.iter().fold(SimDuration::ZERO, |a, &b| a + b);
        assert_eq!(sum, ms(33));
    }

    #[test]
    fn virtual_deadlines_are_proportional_to_wcet() {
        let wcets = vec![ms(1), ms(3)];
        let vds = assign_virtual_deadlines(&wcets, ms(40));
        assert_eq!(vds[0], ms(10));
        assert_eq!(vds[1], ms(30));
    }

    #[test]
    fn zero_wcets_give_zero_deadlines() {
        let vds = assign_virtual_deadlines(&[SimDuration::ZERO; 3], ms(10));
        assert!(vds.iter().all(|d| d.is_zero()));
    }

    #[test]
    fn empty_stage_list_is_empty() {
        assert!(assign_virtual_deadlines(&[], ms(10)).is_empty());
    }

    #[test]
    fn compiled_task_has_paper_priorities() {
        let t = compile_default();
        let n = t.spec.stages.len();
        for (j, s) in t.spec.stages.iter().enumerate() {
            let expected = if j == n - 1 {
                PriorityLevel::High
            } else {
                PriorityLevel::Low
            };
            assert_eq!(s.priority, expected, "stage {j}");
        }
    }

    #[test]
    fn compiled_task_forms_a_chain() {
        let t = compile_default();
        for (j, s) in t.spec.stages.iter().enumerate() {
            if j == 0 {
                assert!(s.predecessors.is_empty());
            } else {
                assert_eq!(s.predecessors, vec![j - 1]);
            }
        }
    }

    #[test]
    fn stage_wcets_are_positive_and_pessimistic() {
        let t = compile_default();
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        for (j, s) in t.spec.stages.iter().enumerate() {
            assert!(!s.wcet.is_zero(), "stage {j} WCET");
            let nominal = t.stage_profiles[j].duration_at(&speedup, 34.0);
            assert!(
                s.wcet.as_nanos() as f64 >= nominal.as_nanos() as f64,
                "WCET must dominate the nominal time"
            );
        }
    }

    #[test]
    fn task_is_feasible_at_thirty_fps() {
        // A single ResNet18 on half the GPU must fit well within 33 ms —
        // otherwise the paper's 20+-task pivot points would be impossible.
        let t = compile_default();
        let total = t.spec.total_stage_wcet();
        assert!(
            total < SimDuration::from_micros(33_333),
            "total stage WCET {total} exceeds the period"
        );
    }

    #[test]
    fn whole_task_duration_shrinks_with_sms() {
        let t = compile_default();
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        let d34 = whole_task_duration(&t, &speedup, 5_000, 34);
        let d68 = whole_task_duration(&t, &speedup, 5_000, 68);
        assert!(d68 < d34);
    }

    #[test]
    fn profile_wcet_includes_margin() {
        let t = compile_default();
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        let raw = t.stage_profiles[0].duration_ns_at(&speedup, 34.0);
        let wcet = profile_wcet(&t.stage_profiles[0], &speedup, 0, 34);
        let ratio = wcet.as_nanos() as f64 / raw;
        assert!((WCET_PESSIMISM - 0.01..=WCET_PESSIMISM + 0.01).contains(&ratio));
    }
}
