//! SGPRS — Seamless GPU Partitioning Real-Time Scheduler.
//!
//! This crate implements the paper's contribution (Babaei & Chantem,
//! DATE 2024): a real-time scheduler for periodic deep-learning workloads
//! on a spatially + temporally partitioned GPU, with *zero-configuration
//! partition switching*. It also implements the paper's *naive* baseline
//! (pure spatial partitioning) that SGPRS is evaluated against.
//!
//! # Architecture
//!
//! * [`ContextPoolSpec`] — describes the context pool: `np` contexts and an
//!   over-subscription factor `os` (Σ SM allocations = `os` × physical SMs).
//! * [`offline`] — the offline phase (§IV-A): per-stage WCET profiling,
//!   virtual-deadline assignment proportional to WCET, and two-level
//!   priority assignment. Produces [`CompiledTask`]s.
//! * [`SgprsScheduler`] — the online phase (§IV-B): absolute stage
//!   deadlines at release, the three-rule context assignment, per-context
//!   three-band EDF stage queues with 2 high + 2 low priority streams, and
//!   medium-priority promotion after an upstream virtual-deadline miss.
//! * [`NaiveScheduler`] — the baseline: static task→partition assignment,
//!   sequential FIFO execution of whole networks, and a partition
//!   reconfiguration cost whenever a context switches tenants (the cost
//!   SGPRS's seamless switching eliminates).
//! * [`RunMetrics`] — total-FPS / deadline-miss-rate accounting shared by
//!   both schedulers (the paper's two evaluation metrics).
//!
//! # Example
//!
//! ```
//! use sgprs_core::{offline, ContextPoolSpec, SgprsConfig, SgprsScheduler};
//! use sgprs_dnn::{models, CostModel};
//! use sgprs_rt::{SimDuration, SimTime};
//!
//! // Two contexts, 1.5x over-subscribed, on the paper's 68-SM GPU.
//! let pool = ContextPoolSpec::new(2, 1.5);
//! let net = models::resnet18(1, 224);
//! let task = offline::compile_network_task(
//!     "cam0",
//!     &net,
//!     &CostModel::calibrated(),
//!     6,                                  // six stages, as in the paper
//!     sgprs_rt::SimDuration::from_micros(33_333),   // 30 fps
//!     &pool,
//! )
//! .expect("resnet18 splits into 6 stages");
//! let mut sched = SgprsScheduler::new(SgprsConfig::new(pool), vec![task; 4]);
//! let metrics = sched.run(SimTime::ZERO + SimDuration::from_secs(2));
//! assert!(metrics.total_fps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod compiled;
mod config;
mod metrics;
mod naive;
pub mod offline;
mod reconfig;
mod sgprs;

pub use compiled::CompiledTask;
pub use config::{Admission, ContextPoolSpec, NaiveConfig, QueueOrder, SgprsConfig};
pub use metrics::{MetricsCollector, RunMetrics, TaskMetrics};
pub use naive::NaiveScheduler;
pub use reconfig::{ReconfigConfig, ReconfigScheduler};
pub use sgprs::SgprsScheduler;
