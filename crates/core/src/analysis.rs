//! Offline capacity analysis: predicting pivot points before simulating.
//!
//! The experiment harness sweeps task counts to *find* the pivot point;
//! this module *predicts* it from first principles, which serves two
//! purposes: (a) sanity-checking the simulator (the measured pivot must
//! bracket the fluid prediction) and (b) giving users a fast feasibility
//! probe before they deploy a task set.
//!
//! The model is the same occupancy argument the contention model is built
//! on: with `np` contexts of `sm` SMs each running up to `k` concurrent
//! stages, the pool demands `np · k · s_mix(sm / k̄)` SM-equivalents, the
//! device delivers at most `min(demand, M)` of them, and each inference
//! consumes `T₁` SM-seconds of single-SM work.

use crate::{CompiledTask, ContextPoolSpec};
use sgprs_gpu_sim::SpeedupModel;

/// Fluid-model capacity estimate for a pool running copies of one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEstimate {
    /// Aggregate delivered throughput in SM-equivalents (≤ physical SMs).
    pub delivered_sm_equivalents: f64,
    /// Sustainable inferences per second.
    pub max_fps: f64,
    /// Predicted pivot point for the given per-task rate.
    pub pivot_tasks: usize,
}

/// Estimates pool capacity for identical copies of `task` released at
/// `fps` frames per second, assuming each context keeps `concurrency`
/// stages resident (the paper's stream layout allows up to 4; saturated
/// SGPRS typically sustains 3–4).
///
/// # Example
///
/// ```
/// use sgprs_core::{analysis, offline, ContextPoolSpec};
/// use sgprs_dnn::{models, CostModel};
/// use sgprs_rt::SimDuration;
///
/// let pool = ContextPoolSpec::new(3, 1.5);
/// let task = offline::compile_network_task(
///     "t", &models::resnet18(1, 224), &CostModel::calibrated(), 6,
///     SimDuration::from_micros(33_333), &pool,
/// ).unwrap();
/// let est = analysis::estimate_capacity(&task, &pool, 30.0, 4.0);
/// assert!(est.pivot_tasks >= 20 && est.pivot_tasks <= 30);
/// ```
#[must_use]
pub fn estimate_capacity(
    task: &CompiledTask,
    pool: &ContextPoolSpec,
    fps: f64,
    concurrency: f64,
) -> CapacityEstimate {
    let speedup = SpeedupModel::calibrated_rtx_2080_ti();
    let total_sms = f64::from(pool.gpu.total_sms);
    let allocations = pool.sm_allocations();
    // Occupancy demanded: each context runs `concurrency` stages, each on
    // an even share of the context's SMs, at the whole-network op mix.
    let demand: f64 = allocations
        .iter()
        .map(|&sm| {
            let m_eff = f64::from(sm) / concurrency;
            concurrency * task.whole_profile.effective_speedup(&speedup, m_eff)
        })
        .sum();
    let delivered = demand.min(total_sms);
    // Each inference consumes T1 seconds of single-SM work.
    let t1_secs = task.whole_profile.total_single_sm_ns() / 1e9;
    let max_fps = if t1_secs > 0.0 {
        delivered / t1_secs
    } else {
        f64::INFINITY
    };
    let pivot_tasks = if fps > 0.0 {
        (max_fps / fps).floor() as usize
    } else {
        0
    };
    CapacityEstimate {
        delivered_sm_equivalents: delivered,
        max_fps,
        pivot_tasks,
    }
}

/// Estimates the naive baseline's capacity: `np` partitions each running
/// one whole network at a time, plus the per-job partition-switch tax.
#[must_use]
pub fn estimate_naive_capacity(
    task: &CompiledTask,
    partitions: usize,
    switch_ns: f64,
    fps: f64,
) -> CapacityEstimate {
    let speedup = SpeedupModel::calibrated_rtx_2080_ti();
    let pool = ContextPoolSpec::new(partitions, 1.0);
    let allocations = pool.sm_allocations();
    let mut total_fps = 0.0;
    let mut delivered = 0.0;
    for &sm in &allocations {
        let t_ns = task
            .whole_profile
            .duration_ns_at(&speedup, f64::from(sm))
            + switch_ns;
        if t_ns > 0.0 {
            total_fps += 1e9 / t_ns;
        }
        delivered += task
            .whole_profile
            .effective_speedup(&speedup, f64::from(sm));
    }
    CapacityEstimate {
        delivered_sm_equivalents: delivered,
        max_fps: total_fps,
        pivot_tasks: if fps > 0.0 {
            (total_fps / fps).floor() as usize
        } else {
            0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline;
    use sgprs_dnn::{models, CostModel};
    use sgprs_rt::SimDuration;

    fn task_for(pool: &ContextPoolSpec) -> CompiledTask {
        offline::compile_network_task(
            "t",
            &models::resnet18(1, 224),
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            pool,
        )
        .unwrap()
    }

    #[test]
    fn sgprs_prediction_brackets_the_measured_pivot() {
        // Measured Scenario-2 pivot (EXPERIMENTS.md): 24 tasks.
        let pool = ContextPoolSpec::new(3, 1.5);
        let est = estimate_capacity(&task_for(&pool), &pool, 30.0, 4.0);
        assert!(
            (20..=30).contains(&est.pivot_tasks),
            "fluid pivot {} should bracket the measured 24",
            est.pivot_tasks
        );
    }

    #[test]
    fn delivered_never_exceeds_the_device() {
        for (np, os) in [(2, 1.0), (2, 2.0), (3, 1.5), (4, 2.0)] {
            let pool = ContextPoolSpec::new(np, os);
            let est = estimate_capacity(&task_for(&pool), &pool, 30.0, 4.0);
            assert!(est.delivered_sm_equivalents <= 68.0 + 1e-9);
        }
    }

    #[test]
    fn oversubscription_raises_predicted_capacity_when_unsaturated() {
        let p10 = ContextPoolSpec::new(2, 1.0);
        let p20 = ContextPoolSpec::new(2, 2.0);
        let e10 = estimate_capacity(&task_for(&p10), &p10, 30.0, 4.0);
        let e20 = estimate_capacity(&task_for(&p20), &p20, 30.0, 4.0);
        assert!(e20.max_fps >= e10.max_fps);
    }

    #[test]
    fn naive_prediction_is_below_sgprs() {
        let pool = ContextPoolSpec::new(3, 1.5);
        let task = task_for(&pool);
        let sgprs = estimate_capacity(&task, &pool, 30.0, 4.0);
        let naive = estimate_naive_capacity(&task, 3, 450_000.0, 30.0);
        assert!(naive.max_fps < sgprs.max_fps);
        assert!(naive.pivot_tasks < sgprs.pivot_tasks);
    }

    #[test]
    fn naive_prediction_matches_measured_ballpark() {
        // Measured naive Scenario-2 plateau ≈ 434 fps (EXPERIMENTS.md).
        let pool = ContextPoolSpec::new(3, 1.0);
        let task = task_for(&pool);
        let naive = estimate_naive_capacity(&task, 3, 450_000.0, 30.0);
        assert!(
            (350.0..=550.0).contains(&naive.max_fps),
            "naive capacity {:.0} should be near the measured ~434 fps",
            naive.max_fps
        );
    }

    #[test]
    fn zero_rate_means_zero_pivot() {
        let pool = ContextPoolSpec::new(2, 1.0);
        let est = estimate_capacity(&task_for(&pool), &pool, 0.0, 4.0);
        assert_eq!(est.pivot_tasks, 0);
    }
}
