//! Exercises [`CountingAlloc`] as this test process's real global
//! allocator: snapshots are monotone, a no-op window shows a zero
//! delta, and heap traffic moves the counters.
//!
//! One test function on purpose — the counters are process-global, so
//! concurrent test threads would smear each other's deltas.

use sgprs_bench::report::{AllocStats, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn counting_allocator_tracks_heap_traffic() {
    // A no-op window allocates nothing: adjacent snapshots are equal.
    let a = AllocStats::snapshot();
    let b = AllocStats::snapshot();
    assert_eq!(b.since(&a), AllocStats::default(), "no-op window must be a zero delta");

    // Heap traffic moves allocs and bytes by at least what we asked for.
    let before = AllocStats::snapshot();
    let v: Vec<u8> = vec![0u8; 4096];
    let after = AllocStats::snapshot();
    let delta = after.since(&before);
    assert!(delta.allocs >= 1, "vec![0; 4096] must allocate: {delta:?}");
    assert!(delta.bytes >= 4096, "at least the vec's bytes: {delta:?}");
    drop(v);
    let freed = AllocStats::snapshot().since(&after);
    assert!(freed.deallocs >= 1, "dropping the vec must deallocate: {freed:?}");

    // Growing a vec in place or by move goes through realloc.
    let before = AllocStats::snapshot();
    let mut grow: Vec<u8> = Vec::with_capacity(8);
    grow.extend(std::iter::repeat_n(1u8, 1024));
    let delta = AllocStats::snapshot().since(&before);
    assert!(
        delta.reallocs >= 1 || delta.allocs >= 2,
        "growth shows up as realloc or fresh alloc: {delta:?}"
    );

    // Monotone: raw snapshots never decrease.
    let late = AllocStats::snapshot();
    assert!(late.allocs >= before.allocs);
    assert!(late.deallocs >= before.deallocs);
    assert!(late.bytes >= before.bytes);
}
