//! Schema golden test for [`BenchReport`] plus round-trips of the
//! targeted field readers and the regression gate's pass/fail split.
//!
//! The golden pin is deliberate coupling: the `BENCH_*.json` sidecar is
//! a versioned machine-readable surface, so any rendering change must
//! show up here and force a conscious `BENCH_REPORT_SCHEMA_VERSION`
//! bump.

use sgprs_bench::report::{
    gate_against_baseline, json_f64, json_span_calls, json_str, json_u64, AllocStats, BenchReport,
    BENCH_REPORT_SCHEMA_VERSION,
};
use sgprs_cluster::SpanProfile;

/// A fully fixed report: default (all-zero) span profile, hand-picked
/// counters, round wall time so the derived throughputs are exact.
fn golden_report() -> BenchReport {
    BenchReport::new(
        "fleet",
        "golden",
        "event",
        4,
        100,
        1_000,
        250.0,
        &SpanProfile::default(),
        AllocStats {
            allocs: 12_345,
            deallocs: 12_000,
            reallocs: 7,
            bytes: 65_536,
        },
    )
}

const ZERO_HIST: &str = "[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]";

#[test]
fn report_json_matches_the_schema_golden() {
    let expected = format!(
        r#"{{
  "schema_version": 2,
  "bin": "fleet",
  "scenario": "golden",
  "engine": "event",
  "nodes": 4,
  "tenants": 100,
  "events": 1000,
  "wall_ms": 250.000,
  "events_per_sec": 4000.0,
  "arrivals_per_sec": 400.0,
  "alloc": {{"allocs": 12345, "deallocs": 12000, "reallocs": 7, "bytes": 65536, "allocs_per_event": 12.3450}},
  "spans": [
    {{"span": "plan", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "drain_scan", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "event_pop", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "event_exec", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "epoch_compile", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "telemetry_fold", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "arrival_pull", "calls": 0, "wall_hist": {ZERO_HIST}}},
    {{"span": "wheel_cascade", "calls": 0, "wall_hist": {ZERO_HIST}}}
  ]
}}
"#
    );
    assert_eq!(
        golden_report().to_json(),
        expected,
        "schema drift: if intentional, bump BENCH_REPORT_SCHEMA_VERSION \
         (currently {BENCH_REPORT_SCHEMA_VERSION}) and update this golden"
    );
}

#[test]
fn targeted_field_readers_round_trip_the_golden() {
    let json = golden_report().to_json();
    assert_eq!(json_u64(&json, "schema_version"), Some(2));
    assert_eq!(json_str(&json, "bin").as_deref(), Some("fleet"));
    assert_eq!(json_str(&json, "scenario").as_deref(), Some("golden"));
    assert_eq!(json_str(&json, "engine").as_deref(), Some("event"));
    assert_eq!(json_u64(&json, "nodes"), Some(4));
    assert_eq!(json_u64(&json, "tenants"), Some(100));
    assert_eq!(json_u64(&json, "events"), Some(1_000));
    assert_eq!(json_u64(&json, "allocs"), Some(12_345));
    assert_eq!(json_u64(&json, "bytes"), Some(65_536));
    assert_eq!(json_f64(&json, "wall_ms"), Some(250.0));
    assert_eq!(json_f64(&json, "events_per_sec"), Some(4_000.0));
    assert_eq!(json_f64(&json, "allocs_per_event"), Some(12.345));
    for span in ["plan", "event_pop", "arrival_pull"] {
        assert_eq!(json_span_calls(&json, span), Some(0));
    }
    assert_eq!(json_span_calls(&json, "no_such_span"), None);
    assert_eq!(json_u64(&json, "no_such_key"), None);
}

#[test]
fn gate_passes_a_report_against_its_own_rendering() {
    let report = golden_report();
    let outcome = gate_against_baseline(&report, &report.to_json(), 10.0);
    assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    assert!(outcome.warnings.is_empty(), "warnings: {:?}", outcome.warnings);
}

#[test]
fn gate_fails_hard_on_deterministic_counter_drift() {
    let baseline = golden_report().to_json();

    let mut drifted = golden_report();
    drifted.events += 1;
    let outcome = gate_against_baseline(&drifted, &baseline, 10.0);
    assert!(!outcome.passed());
    assert!(
        outcome.failures.iter().any(|f| f.starts_with("events:")),
        "failures: {:?}",
        outcome.failures
    );

    let mut leaky = golden_report();
    leaky.alloc.allocs += 100;
    assert!(!gate_against_baseline(&leaky, &baseline, 10.0).passed());

    let mut respanned = golden_report();
    respanned.spans[0].calls = 5;
    let outcome = gate_against_baseline(&respanned, &baseline, 10.0);
    assert!(
        outcome.failures.iter().any(|f| f.contains("span plan")),
        "failures: {:?}",
        outcome.failures
    );

    let mut renamed = golden_report();
    renamed.engine = "epoch".to_string();
    assert!(!gate_against_baseline(&renamed, &baseline, 10.0).passed());

    let no_schema = baseline.replace("\"schema_version\": 2", "\"schema_version\": 999");
    assert!(!gate_against_baseline(&golden_report(), &no_schema, 10.0).passed());
}

#[test]
fn gate_only_warns_on_wall_clock_drift() {
    let baseline = golden_report().to_json();
    let mut slower = golden_report();
    // 100x slower: far beyond the 10x factor, but wall-clock is a
    // machine property — the gate must warn, never fail.
    slower.wall_ms *= 100.0;
    slower.events_per_sec /= 100.0;
    let outcome = gate_against_baseline(&slower, &baseline, 10.0);
    assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    assert_eq!(outcome.warnings.len(), 2, "warnings: {:?}", outcome.warnings);
}
