//! The machine-readable bench report: schema, allocation accounting,
//! and the regression gate.
//!
//! Every fleet-scale bench bin (`fleet`, `fleet_stream`,
//! `fleet_events_perf`) finishes by writing a `BENCH_<bin>.json`
//! sidecar rendered from a [`BenchReport`]: scenario identity, engine,
//! wall-clock throughput, the per-span profiler histograms
//! ([`sgprs_cluster::SpanProfile`]), and allocation stats from the
//! [`CountingAlloc`] global allocator — allocs/event is the headline
//! number ROADMAP item 2 optimises against.
//!
//! The report is a *sidecar*: the deterministic simulation output stays
//! byte-identical run to run, while this file carries the fields that
//! legitimately vary (wall time) next to the fields that must not
//! (span call counts, events simulated, allocation counts on the
//! single-threaded event path). [`gate_against_baseline`] is the CI
//! regression gate built on that split — deterministic counters compare
//! exactly and fail hard, wall-clock fields compare within a generous
//! factor and only warn.

use sgprs_cluster::{Span, SpanProfile, PLAN_LATENCY_BINS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version stamped into every report as `schema_version`; bump on any
/// field change so downstream tooling can reject reports it does not
/// understand. v2: the `wheel_cascade` span row joined `spans` when the
/// event queue became a timing wheel.
pub const BENCH_REPORT_SCHEMA_VERSION: u32 = 2;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Bench bins install
/// it as their `#[global_allocator]`; [`AllocStats::snapshot`] then
/// reads the counters (and stays all-zero in processes that never
/// installed it). Counting uses relaxed atomics — the bins measure on
/// one thread, and approximate interleaving would only ever smear
/// counts across concurrent phases, never lose them.
pub struct CountingAlloc;

// The one justified `unsafe` in this crate: `GlobalAlloc` is an unsafe
// trait by contract. The impl adds no invariants of its own — it counts
// and delegates every call verbatim to `System`.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the [`CountingAlloc`] counters. Monotone: every field
/// only grows over a process's lifetime, so deltas via
/// [`AllocStats::since`] are always well-defined.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations performed.
    pub allocs: u64,
    /// Heap deallocations performed.
    pub deallocs: u64,
    /// Reallocations (growth/shrink in place or by move).
    pub reallocs: u64,
    /// Bytes requested across allocations and growth reallocations.
    pub bytes: u64,
}

impl AllocStats {
    /// Reads the live counters (all zero unless [`CountingAlloc`] is the
    /// process's global allocator).
    #[must_use]
    pub fn snapshot() -> Self {
        AllocStats {
            allocs: ALLOCS.load(Ordering::Relaxed),
            deallocs: DEALLOCS.load(Ordering::Relaxed),
            reallocs: REALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// The delta from an `earlier` snapshot to this one.
    #[must_use]
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            reallocs: self.reallocs.saturating_sub(earlier.reallocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// One span's row in the report: its stable name, the (deterministic)
/// call count, and the (wall-clock) log2 latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// The span's stable lower-snake name ([`Span::name`]).
    pub span: &'static str,
    /// Times the span executed — deterministic, gated exactly.
    pub calls: u64,
    /// Wall-clock latency histogram, log2 ns buckets — never gated.
    pub wall_hist: [u64; PLAN_LATENCY_BINS],
}

/// The versioned, machine-readable result of one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Emitting binary (`fleet`, `fleet_stream`, `fleet_events_perf`).
    pub bin: String,
    /// Scenario label, e.g. `metro-scale x256 churn+bursts [p2c/8]`.
    pub scenario: String,
    /// Execution mode: `event`, `epoch`, or `dispatch-replay`.
    pub engine: String,
    /// Fleet size in nodes.
    pub nodes: u64,
    /// Tenant arrivals offered by the scenario (deterministic).
    pub tenants: u64,
    /// Events processed: heap pops plus stream pulls on the event path,
    /// stream pulls alone on the replay path (deterministic).
    pub events: u64,
    /// Measured wall time of the run, milliseconds.
    pub wall_ms: f64,
    /// `events / wall seconds`.
    pub events_per_sec: f64,
    /// `tenants / wall seconds`.
    pub arrivals_per_sec: f64,
    /// Allocation delta across the measured run ([`AllocStats::since`]).
    pub alloc: AllocStats,
    /// Per-span profiler rows, in [`Span::ALL`] order.
    pub spans: Vec<SpanReport>,
}

impl BenchReport {
    /// Builds a report from a run's measurements. `wall_ms` feeds the
    /// derived throughput fields; `profile` (from
    /// [`sgprs_cluster::Fleet::span_profile`]) fills the span rows.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bin: &str,
        scenario: &str,
        engine: &str,
        nodes: u64,
        tenants: u64,
        events: u64,
        wall_ms: f64,
        profile: &SpanProfile,
        alloc: AllocStats,
    ) -> Self {
        let wall_secs = (wall_ms / 1e3).max(1e-9);
        BenchReport {
            bin: bin.to_string(),
            scenario: scenario.to_string(),
            engine: engine.to_string(),
            nodes,
            tenants,
            events,
            wall_ms,
            events_per_sec: events as f64 / wall_secs,
            arrivals_per_sec: tenants as f64 / wall_secs,
            alloc,
            spans: Span::ALL
                .iter()
                .map(|&s| SpanReport {
                    span: s.name(),
                    calls: profile.calls(s),
                    wall_hist: *profile.wall_hist(s),
                })
                .collect(),
        }
    }

    /// Allocations per processed event — the headline number the event
    /// hot-path work (ROADMAP item 2) drives down. Deterministic on the
    /// single-threaded event path.
    #[must_use]
    pub fn allocs_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.alloc.allocs as f64 / self.events as f64
        }
    }

    /// Renders the report as pretty-printed JSON (hand-rolled, like the
    /// deterministic fleet export — the vendored serde has no
    /// serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2_048);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {BENCH_REPORT_SCHEMA_VERSION},\n"
        ));
        out.push_str(&format!("  \"bin\": \"{}\",\n", escape(&self.bin)));
        out.push_str(&format!("  \"scenario\": \"{}\",\n", escape(&self.scenario)));
        out.push_str(&format!("  \"engine\": \"{}\",\n", escape(&self.engine)));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str(&format!("  \"events_per_sec\": {:.1},\n", self.events_per_sec));
        out.push_str(&format!(
            "  \"arrivals_per_sec\": {:.1},\n",
            self.arrivals_per_sec
        ));
        out.push_str(&format!(
            "  \"alloc\": {{\"allocs\": {}, \"deallocs\": {}, \"reallocs\": {}, \"bytes\": {}, \"allocs_per_event\": {:.4}}},\n",
            self.alloc.allocs,
            self.alloc.deallocs,
            self.alloc.reallocs,
            self.alloc.bytes,
            self.allocs_per_event()
        ));
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let hist: Vec<String> = s.wall_hist.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    {{\"span\": \"{}\", \"calls\": {}, \"wall_hist\": [{}]}}{}\n",
                s.span,
                s.calls,
                hist.join(", "),
                if i + 1 < self.spans.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `BENCH_<bin>.json` in the current directory
    /// and returns the file name.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_sidecar(&self) -> std::io::Result<String> {
        let name = format!("BENCH_{}.json", self.bin);
        std::fs::write(&name, self.to_json())?;
        Ok(name)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts the first `"key": <unsigned integer>` field from a rendered
/// report. Schema-coupled by design — a targeted reader for the gate,
/// not a JSON parser.
#[must_use]
pub fn json_u64(json: &str, key: &str) -> Option<u64> {
    let tail = field_tail(json, key)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts the first `"key": <number>` field as a float.
#[must_use]
pub fn json_f64(json: &str, key: &str) -> Option<f64> {
    let tail = field_tail(json, key)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Extracts the first `"key": "<string>"` field (unescaped values only —
/// report identity fields never need escapes).
#[must_use]
pub fn json_str(json: &str, key: &str) -> Option<String> {
    let tail = field_tail(json, key)?;
    let tail = tail.strip_prefix('"')?;
    Some(tail[..tail.find('"')?].to_string())
}

/// Extracts the `calls` count of the span row named `span`.
#[must_use]
pub fn json_span_calls(json: &str, span: &str) -> Option<u64> {
    let row_start = json.find(&format!("\"span\": \"{span}\""))?;
    json_u64(&json[row_start..], "calls")
}

fn field_tail<'j>(json: &'j str, key: &str) -> Option<&'j str> {
    let marker = format!("\"{key}\":");
    let at = json.find(&marker)? + marker.len();
    Some(json[at..].trim_start())
}

/// The result of gating a fresh report against a committed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateOutcome {
    /// Deterministic-counter mismatches: these fail CI.
    pub failures: Vec<String>,
    /// Wall-clock drifts beyond the threshold: these only warn.
    pub warnings: Vec<String>,
}

impl GateOutcome {
    /// Whether the deterministic counters all matched.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates `current` against a committed baseline report (its rendered
/// JSON). Deterministic fields — scenario identity, nodes, tenants,
/// events, per-span call counts, and allocation counts — must match
/// **exactly** (they are pure functions of the configuration on the
/// single-threaded paths the gate runs). Wall-clock fields (`wall_ms`,
/// `events_per_sec`) only warn when they drift beyond `wall_factor`×
/// in either direction, so machine speed never fails CI.
#[must_use]
pub fn gate_against_baseline(
    current: &BenchReport,
    baseline_json: &str,
    wall_factor: f64,
) -> GateOutcome {
    let mut out = GateOutcome::default();
    match json_u64(baseline_json, "schema_version") {
        Some(v) if v == u64::from(BENCH_REPORT_SCHEMA_VERSION) => {}
        got => out.failures.push(format!(
            "schema_version: baseline has {got:?}, this binary writes {BENCH_REPORT_SCHEMA_VERSION} \
             — regenerate the baseline with --write-baseline"
        )),
    }
    for (key, want) in [("scenario", &current.scenario), ("engine", &current.engine)] {
        match json_str(baseline_json, key) {
            Some(have) if have == *want => {}
            have => out.failures.push(format!(
                "{key}: baseline has {have:?}, current run is {want:?} — not comparable"
            )),
        }
    }
    for (key, want) in [
        ("nodes", current.nodes),
        ("tenants", current.tenants),
        ("events", current.events),
        ("allocs", current.alloc.allocs),
    ] {
        match json_u64(baseline_json, key) {
            Some(have) if have == want => {}
            have => out.failures.push(format!(
                "{key}: baseline {have:?} != current {want} (deterministic counter)"
            )),
        }
    }
    for span in &current.spans {
        match json_span_calls(baseline_json, span.span) {
            Some(have) if have == span.calls => {}
            have => out.failures.push(format!(
                "span {} calls: baseline {have:?} != current {} (deterministic counter)",
                span.span, span.calls
            )),
        }
    }
    for (key, want) in [
        ("wall_ms", current.wall_ms),
        ("events_per_sec", current.events_per_sec),
    ] {
        if let Some(have) = json_f64(baseline_json, key) {
            if have > 0.0 && (want > have * wall_factor || want < have / wall_factor) {
                out.warnings.push(format!(
                    "{key}: {want:.1} vs baseline {have:.1} drifts beyond {wall_factor}x \
                     (wall-clock: warning only)"
                ));
            }
        }
    }
    out
}
