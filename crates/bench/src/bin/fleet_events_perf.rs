//! **Event-engine perf gate**: runs the metro-scale scenario on the
//! event-driven engine with the span profiler armed, emits the
//! machine-readable `BENCH_fleet_events_perf.json` sidecar, and — when
//! `--baseline` points at a committed report — gates the deterministic
//! counters (events simulated, allocs/event, per-span call counts)
//! against it. Counters must match **exactly**; wall-clock fields only
//! warn, so machine speed never fails CI.
//!
//! `--raw` runs the same scenario with **no profiling and no
//! telemetry**: the hot loop does zero clock reads, the event count
//! comes from the engine's unconditional processed counter
//! ([`Fleet::events_processed`]), and the report carries an all-zero
//! span profile. This is the honest configuration for wall-clock
//! claims (at 10k nodes the profiler's four `Instant` reads per event
//! cost more than the event itself) — the fleet-scale gate runs
//! `--nodes 10000 --raw` against `bench/baseline_10k.json`.
//!
//! Usage:
//!   `cargo run --release -p sgprs-bench --bin fleet_events_perf -- \
//!       [--nodes N] [--sim-secs S] [--raw] [--baseline PATH] [--write-baseline PATH]`

use sgprs_bench::report::{gate_against_baseline, AllocStats, BenchReport, CountingAlloc};
use sgprs_cluster::{Fleet, Span, SpanProfile};
use sgprs_rt::SimDuration;
use sgprs_workload::FleetScenario;

/// Count heap traffic so the report can gate allocs/event.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Defaults sized so the CI smoke finishes in seconds while still
/// pushing six-figure event counts through the engine.
const DEFAULT_NODES: usize = 256;
/// Default simulated horizon in seconds.
const DEFAULT_SIM_SECS: u64 = 4;
/// Telemetry window — armed so the TelemetryFold span is exercised.
const TELEMETRY_WINDOW: SimDuration = SimDuration::from_millis(250);
/// Wall-clock drift tolerated before a (non-fatal) warning.
const WALL_FACTOR: f64 = 10.0;

struct Args {
    nodes: usize,
    sim_secs: u64,
    raw: bool,
    baseline: Option<String>,
    write_baseline: Option<String>,
}

fn parse(args: &[String]) -> Args {
    let mut out = Args {
        nodes: DEFAULT_NODES,
        sim_secs: DEFAULT_SIM_SECS,
        raw: false,
        baseline: None,
        write_baseline: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.nodes = v;
                    i += 1;
                }
            }
            "--sim-secs" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    out.sim_secs = v;
                    i += 1;
                }
            }
            "--raw" => out.raw = true,
            "--baseline" => {
                if let Some(v) = args.get(i + 1) {
                    out.baseline = Some(v.clone());
                    i += 1;
                }
            }
            "--write-baseline" => {
                if let Some(v) = args.get(i + 1) {
                    out.write_baseline = Some(v.clone());
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out.nodes = out.nodes.max(1);
    out.sim_secs = out.sim_secs.max(1);
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse(&argv);

    // The gated workload: metro-scale heterogeneous fleet (p2c shard
    // routing, earliest-deadline queues, repricing) on the event
    // engine — with windowed telemetry so every profiled span fires,
    // unless `--raw` strips all instrumentation for an honest
    // wall-clock measurement.
    let mut scenario = FleetScenario::metro_scale(args.nodes, args.sim_secs).with_event_driven();
    if !args.raw {
        scenario = scenario.with_telemetry(TELEMETRY_WINDOW);
    }

    let cfg = scenario.config();
    let cfg = if args.raw { cfg } else { cfg.with_profiling() };
    let mut fleet = Fleet::new(cfg);
    let alloc_before = AllocStats::snapshot();
    let started = std::time::Instant::now();
    let metrics = fleet.run_configured(scenario.arrivals(), scenario.sim);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let alloc = AllocStats::snapshot().since(&alloc_before);

    // Raw mode never constructed a profiler; its report carries the
    // engine's unconditional event counter and all-zero spans (which a
    // raw-generated baseline then pins as all-zero, consistently).
    let (profile, events) = if args.raw {
        (SpanProfile::default(), fleet.events_processed())
    } else {
        let profile = fleet
            .span_profile()
            .expect("the gated run ran with profiling armed");
        let events = profile.calls(Span::EventPop) + profile.calls(Span::ArrivalPull);
        (profile, events)
    };
    let bin = if args.raw {
        "fleet_events_perf_raw"
    } else {
        "fleet_events_perf"
    };
    let report = BenchReport::new(
        bin,
        &scenario.label,
        "event",
        args.nodes as u64,
        metrics.arrivals,
        events,
        wall_ms,
        &profile,
        alloc,
    );

    println!(
        "fleet_events_perf: {} nodes, {} sim-secs — {} arrivals, {} events, \
         {:.0} ms wall, {:.2} allocs/event, {:.0}k events/sec",
        args.nodes,
        args.sim_secs,
        report.tenants,
        report.events,
        report.wall_ms,
        report.allocs_per_event(),
        report.events_per_sec / 1e3
    );

    match report.write_sidecar() {
        Ok(name) => println!("wrote perf sidecar {name}"),
        Err(e) => eprintln!("perf sidecar write failed: {e}"),
    }

    if let Some(path) = &args.write_baseline {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("wrote baseline {path}"),
            Err(e) => {
                eprintln!("baseline write failed for {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let outcome = gate_against_baseline(&report, &baseline, WALL_FACTOR);
        for w in &outcome.warnings {
            println!("WARN  {w}");
        }
        for f in &outcome.failures {
            println!("FAIL  {f}");
        }
        if outcome.passed() {
            println!(
                "gate PASSED against {path}: all deterministic counters match \
                 ({} warnings)",
                outcome.warnings.len()
            );
        } else {
            println!(
                "gate FAILED against {path}: {} deterministic counter mismatch(es) — \
                 if intentional, regenerate with --write-baseline {path}",
                outcome.failures.len()
            );
            std::process::exit(1);
        }
    }
}
