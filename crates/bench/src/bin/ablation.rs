//! **Ablation study** (beyond the paper): how much each SGPRS design
//! choice contributes. Runs Scenario 2's best configuration (np=3,
//! os=1.5) with individual features disabled:
//!
//! * `no-medium` — disable the medium-priority promotion rule (§IV-B3).
//! * `fifo` — replace EDF with FIFO inside each priority band.
//! * `1-stage` — no stage splitting (whole network as one sub-task).
//! * `overflow` — allow high stages to borrow idle low-priority streams.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin ablation [--sim-secs N]`

use sgprs_core::{offline, QueueOrder, RunMetrics, SgprsConfig, SgprsScheduler};
use sgprs_dnn::{models, CostModel};
use sgprs_rt::{SimDuration, SimTime};
use sgprs_workload::{SchedulerKind, ScenarioSpec};

fn run_with(
    label: &str,
    stages: usize,
    tweak: impl Fn(&mut SgprsConfig),
    n_tasks: usize,
    sim_secs: u64,
) -> (String, RunMetrics) {
    let spec = ScenarioSpec::new(
        3,
        SchedulerKind::Sgprs {
            oversubscription: 1.5,
        },
        sim_secs,
    );
    let net = models::resnet18(1, 224);
    let task = offline::compile_network_task(
        "resnet18",
        &net,
        &CostModel::calibrated(),
        stages,
        spec.period(),
        &spec.pool(),
    )
    .expect("valid stage count");
    let mut cfg = SgprsConfig::new(spec.pool());
    tweak(&mut cfg);
    let mut sched = SgprsScheduler::new(cfg, vec![task; n_tasks]);
    let m = sched.run(SimTime::ZERO + SimDuration::from_secs(sim_secs));
    (label.to_owned(), m)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, _) = sgprs_bench::parse_args(&args);
    println!("== Ablation: SGPRS np=3 os=1.5, 26 tasks (just past the pivot) ==");
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8}",
        "variant", "total FPS", "DMR", "late", "skipped"
    );
    let n = 26;
    let variants: Vec<(String, RunMetrics)> = vec![
        run_with("full", 6, |_| {}, n, sim_secs),
        run_with("no-medium", 6, |c| c.medium_promotion = false, n, sim_secs),
        run_with("fifo", 6, |c| c.queue_order = QueueOrder::Fifo, n, sim_secs),
        run_with("1-stage", 1, |_| {}, n, sim_secs),
        run_with("overflow", 6, |c| c.high_overflow_to_low = true, n, sim_secs),
    ];
    for (label, m) in &variants {
        println!(
            "{:<12} {:>10.1} {:>7.1}% {:>8} {:>8}",
            label,
            m.total_fps,
            m.dmr * 100.0,
            m.late,
            m.skipped
        );
    }
}
