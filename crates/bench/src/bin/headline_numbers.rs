//! Regenerates the **§V prose numbers**: per-scenario pivot points,
//! plateau FPS at 30 tasks, the naive baseline's FPS drop against the best
//! SGPRS variant, and the Scenario-2 os=1.5 vs os=2.0 comparison.
//!
//! Paper values for reference:
//! * best-case pivot points: 23 tasks (Scenario 1) and 24 tasks (Scenario 2)
//! * naive plateau: 468 fps (S1) and 459 fps (S2) — a 38 % / 36 % drop
//!   versus the best SGPRS variants
//! * Scenario 2: SGPRS 1.5 reaches 741 fps, above SGPRS 2.0 at 731 fps
//!
//! Usage: `cargo run --release -p sgprs-bench --bin headline_numbers [--sim-secs N]`

use sgprs_bench::{paper_task_counts, parse_args};
use sgprs_workload::{report, scenario1_variants, scenario2_variants, sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, _) = parse_args(&args);
    let counts = paper_task_counts();

    for (name, variants, paper_pivot, paper_naive, paper_drop) in [
        ("Scenario 1 (np=2)", scenario1_variants(sim_secs), 23, 468.0, 38.0),
        ("Scenario 2 (np=3)", scenario2_variants(sim_secs), 24, 459.0, 36.0),
    ] {
        println!("== {name} ==");
        let series = sweep::run_sweeps(&variants, &counts);
        print!("{}", report::headline_summary(&series));
        let best_pivot = series
            .iter()
            .filter(|s| !s.label.starts_with("naive"))
            .map(sgprs_workload::sweep::SweepSeries::pivot_point)
            .max()
            .unwrap_or(0);
        println!(
            "paper: best pivot {paper_pivot} tasks, naive plateau {paper_naive:.0} fps ({paper_drop:.0}% below best SGPRS)"
        );
        println!("measured best pivot: {best_pivot} tasks");
        if name.starts_with("Scenario 2") {
            let fps_of = |needle: &str| {
                series
                    .iter()
                    .find(|s| s.label.starts_with(needle))
                    .map(sgprs_workload::sweep::SweepSeries::final_fps)
                    .unwrap_or(0.0)
            };
            let f15 = fps_of("SGPRS 1.5");
            let f20 = fps_of("SGPRS 2.0");
            println!(
                "over-subscription sweet spot: SGPRS 1.5 = {f15:.0} fps vs SGPRS 2.0 = {f20:.0} fps (paper: 741 vs 731)"
            );
        }
        println!();
    }
}
