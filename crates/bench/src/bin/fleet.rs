//! **Fleet serving experiment** (beyond the paper): a multi-GPU fleet
//! with admission control and tenant churn, comparing placement policies
//! over both a homogeneous scale-out and the heterogeneous reference
//! fleet, plus a 64-node flat-vs-sharded dispatch comparison. Every row
//! carries the run's wall-clock so dispatch-layer changes show up.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin fleet [--sim-secs N] [--csv]`

use sgprs_cluster::{FleetMetrics, PlacementPolicy};
use sgprs_workload::FleetScenario;

const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::LeastUtilization,
    PlacementPolicy::BestFit,
];

fn report(scenario_label: &str, row_label: &str, m: &FleetMetrics, wall_ms: f64, csv: bool) {
    if csv {
        println!(
            "{scenario_label},{row_label},{:.2},{:.4},{:.4},{},{wall_ms:.0}",
            m.total_fps, m.dmr, m.rejection_rate, m.migrations
        );
    } else {
        println!(
            "{:<44} {:>10.1} {:>6.1}% {:>8.1}% {:>7} {:>7.0}",
            row_label,
            m.total_fps,
            m.dmr * 100.0,
            m.rejection_rate * 100.0,
            m.still_queued,
            wall_ms
        );
    }
}

fn header(title: &str) {
    println!("== {title} ==");
    println!(
        "{:<44} {:>10} {:>7} {:>9} {:>7} {:>7}",
        "scenario", "total FPS", "DMR", "rejected", "queued", "wall ms"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, csv) = sgprs_bench::parse_args(&args);
    let sim_secs = sim_secs.max(4);

    if csv {
        println!("scenario,policy,total_fps,dmr,rejection_rate,migrations,wall_ms");
    } else {
        header("fleet serving: placement policies under churn");
    }

    for base in [
        FleetScenario::homogeneous(3, 36, sim_secs),
        FleetScenario::heterogeneous_churn(sim_secs),
    ] {
        for policy in POLICIES {
            let scenario = base.clone().with_placement(policy);
            let started = std::time::Instant::now();
            let m = scenario.run();
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let (scenario_label, row_label) = if csv {
                (base.label.as_str(), format!("{policy}"))
            } else {
                (base.label.as_str(), scenario.label.clone())
            };
            report(scenario_label, &row_label, &m, wall_ms, csv);
        }
    }
    if !csv {
        println!();
        println!("least-utilization spreads skewed tenants; best-fit packs for big arrivals");
        println!();
        header("scale-out x64: flat vs sharded dispatch");
    }
    let sharded = FleetScenario::scale_out(64, sim_secs);
    let mut flat = sharded.clone();
    flat.sharding = None;
    flat.label = format!("scale-out x{} + churn [flat]", flat.nodes.len());
    for scenario in [flat, sharded] {
        let started = std::time::Instant::now();
        let m = scenario.run();
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let dispatch = match scenario.sharding {
            Some(size) => format!("{}[sharded/{size}]", scenario.placement),
            None => format!("{}[flat]", scenario.placement),
        };
        report(&scenario.label, &dispatch, &m, wall_ms, csv);
    }
}
