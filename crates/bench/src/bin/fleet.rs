//! **Fleet serving experiment** (beyond the paper): a multi-GPU fleet
//! with admission control and tenant churn, comparing placement policies
//! over both a homogeneous scale-out and the heterogeneous reference
//! fleet, a 64-node flat-vs-sharded dispatch comparison, an overload
//! burst contrasting FIFO-reject with deadline-aware queueing plus fps
//! re-pricing, an event-vs-epoch contrast (exact-boundary dispatching
//! with a migration stall cost vs the epoch grid and its truncation
//! artifact), and a 512-node metro-scale section driving
//! power-of-two-choices shard routing through churn + burst waves in
//! both engines. Every row carries the run's wall-clock so
//! dispatch-layer changes show up.
//!
//! The overload-burst (re-pricing) and metro-scale rows run with the
//! telemetry layer armed (250 ms windows): the metro section reports
//! p99 queue wait and peak per-window queue depth from the merged
//! sketches, and `--telemetry-csv` appends the per-window time-series
//! of those runs as CSV.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin fleet \
//!     [--sim-secs N] [--csv] [--telemetry-csv]`

use sgprs_bench::report::{AllocStats, BenchReport, CountingAlloc};
use sgprs_cluster::{Fleet, FleetMetrics, PlacementPolicy, QueuePolicy, Span, TelemetryReport};
use sgprs_rt::SimDuration;
use sgprs_workload::FleetScenario;

/// Count heap traffic so the perf sidecar can report allocs/event.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Window used for every telemetry-armed row in this binary.
const TELEMETRY_WINDOW: SimDuration = SimDuration::from_millis(250);

/// Appends one CSV row per telemetry window of a finished run.
fn telemetry_windows_csv(scenario: &str, engine: &str, report: &TelemetryReport) {
    for w in &report.windows {
        println!(
            "{scenario},{engine},{:.3},{},{},{},{},{},{},{},{:.4},{:.3},{:.3},{:.3}",
            w.start_secs,
            w.arrivals,
            w.admitted,
            w.degraded,
            w.deferred,
            w.expired,
            w.migrations,
            w.queue_depth_peak,
            w.utilization_mean,
            w.wait.p50_ms,
            w.wait.p90_ms,
            w.wait.p99_ms
        );
    }
}

const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::LeastUtilization,
    PlacementPolicy::BestFit,
];

fn report(scenario_label: &str, row_label: &str, m: &FleetMetrics, wall_ms: f64, csv: bool) {
    if csv {
        println!(
            "{scenario_label},{row_label},{:.2},{:.4},{:.4},{},{},{},{},{:.3},{wall_ms:.0}",
            m.total_fps,
            m.dmr,
            m.rejection_rate,
            m.migrations,
            m.degraded,
            m.upgrades,
            m.truncated_jobs,
            m.migration_stall_secs
        );
    } else {
        println!(
            "{:<52} {:>10.1} {:>6.1}% {:>8.1}% {:>5} {:>5} {:>6} {:>7.2} {:>7.0}",
            row_label,
            m.total_fps,
            m.dmr * 100.0,
            m.rejection_rate * 100.0,
            m.degraded,
            m.upgrades,
            m.truncated_jobs,
            m.migration_stall_secs,
            wall_ms
        );
    }
}

fn header(title: &str) {
    println!("== {title} ==");
    println!(
        "{:<52} {:>10} {:>7} {:>9} {:>5} {:>5} {:>6} {:>7} {:>7}",
        "scenario", "total FPS", "DMR", "rejected", "degr", "upgr", "trunc", "stall s", "wall ms"
    );
}

fn timed_run(scenario: &FleetScenario) -> (FleetMetrics, f64) {
    let started = std::time::Instant::now();
    let m = scenario.run();
    (m, started.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, csv) = sgprs_bench::parse_args(&args);
    let telemetry_csv = args.iter().any(|a| a == "--telemetry-csv");
    let sim_secs = sim_secs.max(4);

    if csv {
        println!(
            "scenario,policy,total_fps,dmr,rejection_rate,migrations,degraded,upgrades,\
             truncated_jobs,migration_stall_secs,wall_ms"
        );
    } else {
        header("fleet serving: placement policies under churn");
    }

    for base in [
        FleetScenario::homogeneous(3, 36, sim_secs),
        FleetScenario::heterogeneous_churn(sim_secs),
    ] {
        for policy in POLICIES {
            let scenario = base.clone().with_placement(policy);
            let (m, wall_ms) = timed_run(&scenario);
            let (scenario_label, row_label) = if csv {
                (base.label.as_str(), format!("{policy}"))
            } else {
                (base.label.as_str(), scenario.label.clone())
            };
            report(scenario_label, &row_label, &m, wall_ms, csv);
        }
    }
    if !csv {
        println!();
        println!("least-utilization spreads skewed tenants; best-fit packs for big arrivals");
        println!();
        header("scale-out x64: flat vs sharded dispatch");
    }
    let sharded = FleetScenario::scale_out(64, sim_secs);
    let mut flat = sharded.clone();
    flat.sharding = None;
    flat.label = format!("scale-out x{} + churn [flat]", flat.nodes.len());
    for scenario in [flat, sharded] {
        let (m, wall_ms) = timed_run(&scenario);
        let dispatch = match scenario.sharding {
            Some(size) => format!("{}[sharded/{size}]", scenario.placement),
            None => format!("{}[flat]", scenario.placement),
        };
        report(&scenario.label, &dispatch, &m, wall_ms, csv);
    }
    if !csv {
        println!();
        header("overload burst: FIFO-reject vs deadline queueing + re-pricing");
    }
    // The acceptance contrast: the same overload trace served by the
    // FIFO-reject baseline and by deadline-aware queueing with the fps
    // re-pricing ladder armed — SGPRS's cheap partition switch should
    // buy a strictly lower eventual rejection rate at no DMR cost.
    let fifo = FleetScenario::overload_burst(sim_secs.max(6));
    let smart = FleetScenario::overload_burst(sim_secs.max(6))
        .with_queue(QueuePolicy::EarliestDeadline, true)
        .with_telemetry(TELEMETRY_WINDOW);
    let (fifo_m, fifo_ms) = timed_run(&fifo);
    let (smart_m, smart_ms) = timed_run(&smart);
    report(&fifo.label, "fifo-reject", &fifo_m, fifo_ms, csv);
    report(&smart.label, "deadline+repricing", &smart_m, smart_ms, csv);
    if !csv {
        println!();
        println!(
            "re-pricing rejects {:.1}% instead of {:.1}% (DMR {:.2}% vs {:.2}%), \
             mean queue wait {:.2}s",
            smart_m.rejection_rate * 100.0,
            fifo_m.rejection_rate * 100.0,
            smart_m.dmr * 100.0,
            fifo_m.dmr * 100.0,
            smart_m.queue_wait_mean_secs
        );
        println!();
        header("event vs epoch: exact boundaries + migration stall vs the grid");
    }
    // The event-driven contrast: the same hot-naive-node scenario on the
    // epoch grid (free migration once per boundary, in-flight jobs
    // truncated) and on the event engine (mid-epoch migration paying the
    // state-transfer stall, zero truncation).
    let epoch = FleetScenario::event_vs_epoch(sim_secs.max(6));
    let event = FleetScenario::event_vs_epoch(sim_secs.max(6)).with_event_driven();
    let (epoch_m, epoch_ms) = timed_run(&epoch);
    let (event_m, event_ms) = timed_run(&event);
    report(&epoch.label, "epoch-grid", &epoch_m, epoch_ms, csv);
    report(&event.label, "event-driven", &event_m, event_ms, csv);
    if !csv {
        println!();
        println!(
            "event mode truncates {} jobs (epoch: {}), DMR {:.2}% vs {:.2}% at equal \
             rejection, {} migrations paying {:.2}s stall vs {} free ones",
            event_m.truncated_jobs,
            epoch_m.truncated_jobs,
            event_m.dmr * 100.0,
            epoch_m.dmr * 100.0,
            event_m.migrations,
            event_m.migration_stall_secs,
            epoch_m.migrations
        );
        println!();
        header("metro-scale x512: p2c shard routing under churn + bursts");
    }
    // The metro-scale smoke: 512 heterogeneous nodes behind
    // power-of-two-choices routing, brisk churn plus synchronized burst
    // waves, served by both engines over the same trace.
    let metro_epoch = FleetScenario::metro_scale(512, sim_secs).with_telemetry(TELEMETRY_WINDOW);
    let metro_event = FleetScenario::metro_scale(512, sim_secs)
        .with_event_driven()
        .with_telemetry(TELEMETRY_WINDOW);
    let (metro_epoch_m, metro_epoch_ms) = timed_run(&metro_epoch);
    // The metro event run keeps its `Fleet` handle: it runs with the
    // span profiler armed and feeds the BENCH_fleet.json perf sidecar.
    // The deterministic metrics are byte-identical with profiling on.
    let mut metro_event_fleet = Fleet::new(metro_event.config().with_profiling());
    let metro_alloc_before = AllocStats::snapshot();
    let metro_started = std::time::Instant::now();
    let metro_event_m = metro_event_fleet.run_configured(metro_event.arrivals(), metro_event.sim);
    let metro_event_ms = metro_started.elapsed().as_secs_f64() * 1e3;
    let metro_alloc = AllocStats::snapshot().since(&metro_alloc_before);
    report(&metro_epoch.label, "epoch-grid", &metro_epoch_m, metro_epoch_ms, csv);
    report(&metro_event.label, "event-driven", &metro_event_m, metro_event_ms, csv);
    if !csv {
        println!();
        println!(
            "512 nodes: {} arrivals routed p2c, {:.0}/{:.0} fleet FPS (epoch/event), \
             wall {:.0} ms vs {:.0} ms",
            metro_epoch_m.arrivals,
            metro_epoch_m.total_fps,
            metro_event_m.total_fps,
            metro_epoch_ms,
            metro_event_ms
        );
        // The telemetry headline: tail queueing behaviour the aggregate
        // counters cannot show, read off the merged per-window sketches.
        if let (Some(te), Some(tv)) = (&metro_epoch_m.telemetry, &metro_event_m.telemetry) {
            println!(
                "metro telemetry ({:.0} ms windows): p99 queue wait {:.1}/{:.1} ms \
                 (epoch/event), peak queue depth {}/{}",
                te.window_secs * 1e3,
                te.queue_wait.p99_ms,
                tv.queue_wait.p99_ms,
                te.peak_queue_depth(),
                tv.peak_queue_depth()
            );
        }
    }
    if telemetry_csv {
        if !csv {
            println!();
            println!("== per-window telemetry (CSV) ==");
        }
        println!(
            "scenario,engine,window_start_secs,arrivals,admitted,degraded,deferred,expired,\
             migrations,queue_depth_peak,utilization_mean,wait_p50_ms,wait_p90_ms,wait_p99_ms"
        );
        for (scenario, engine, m) in [
            ("overload-burst", "epoch", &smart_m),
            ("metro-scale", "epoch", &metro_epoch_m),
            ("metro-scale", "event", &metro_event_m),
        ] {
            if let Some(report) = &m.telemetry {
                telemetry_windows_csv(scenario, engine, report);
            }
        }
    }
    // The perf sidecar: span histograms + allocation stats of the metro
    // event run. Wall-clock only — the deterministic exports above stay
    // byte-identical whether or not this file exists.
    let profile = metro_event_fleet
        .span_profile()
        .expect("the metro event run ran with profiling armed");
    let events = profile.calls(Span::EventPop) + profile.calls(Span::ArrivalPull);
    let bench = BenchReport::new(
        "fleet",
        &metro_event.label,
        "event",
        512,
        metro_event_m.arrivals,
        events,
        metro_event_ms,
        &profile,
        metro_alloc,
    );
    match bench.write_sidecar() {
        Ok(name) => {
            if !csv {
                println!();
                println!(
                    "perf sidecar {name}: {} events, {:.2} allocs/event, {:.0}k events/sec",
                    bench.events,
                    bench.allocs_per_event(),
                    bench.events_per_sec / 1e3
                );
            }
        }
        Err(e) => eprintln!("perf sidecar write failed: {e}"),
    }
}
