//! **Fleet serving experiment** (beyond the paper): a multi-GPU fleet
//! with admission control and tenant churn, comparing placement policies
//! over both a homogeneous scale-out and the heterogeneous reference
//! fleet.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin fleet [--sim-secs N] [--csv]`

use sgprs_cluster::PlacementPolicy;
use sgprs_workload::FleetScenario;

const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::LeastUtilization,
    PlacementPolicy::BestFit,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, csv) = sgprs_bench::parse_args(&args);
    let sim_secs = sim_secs.max(4);

    if csv {
        println!("scenario,policy,total_fps,dmr,rejection_rate,migrations");
    } else {
        println!("== fleet serving: placement policies under churn ==");
        println!(
            "{:<44} {:>10} {:>7} {:>9} {:>7} {:>7}",
            "scenario", "total FPS", "DMR", "rejected", "queued", "nodes"
        );
    }

    for base in [
        FleetScenario::homogeneous(3, 36, sim_secs),
        FleetScenario::heterogeneous_churn(sim_secs),
    ] {
        for policy in POLICIES {
            let scenario = base.clone().with_placement(policy);
            let m = scenario.run();
            if csv {
                println!(
                    "{},{policy},{:.2},{:.4},{:.4},{}",
                    base.label, m.total_fps, m.dmr, m.rejection_rate, m.migrations
                );
            } else {
                println!(
                    "{:<44} {:>10.1} {:>6.1}% {:>8.1}% {:>7} {:>7}",
                    scenario.label,
                    m.total_fps,
                    m.dmr * 100.0,
                    m.rejection_rate * 100.0,
                    m.still_queued,
                    m.nodes.len()
                );
            }
        }
    }
    if !csv {
        println!();
        println!("least-utilization spreads skewed tenants; best-fit packs for big arrivals");
    }
}
