//! Regenerates **Figure 1**: speedup gain for different operations when
//! running in isolation, as a function of SM count.
//!
//! Usage: `cargo run -p sgprs-bench --bin fig1_speedup [--csv]`

use sgprs_workload::{fig1, report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let curves = fig1::generate();
    if csv {
        print!("{}", report::fig1_csv(&curves));
    } else {
        println!("== Figure 1: speedup gain in isolation (RTX 2080 Ti, 68 SMs) ==");
        print!("{}", report::fig1_table(&curves));
        println!();
        println!("paper endpoints: convolution 32x, max pooling 14x, others <= 7x, resnet18 ~23x");
    }
}
