//! **Seamless-switching experiment** (the paper's headline property made
//! measurable): tenants arrive over time and the schedulers must absorb
//! the churn.
//!
//! * SGPRS pre-creates an over-subscribed context pool once; a new tenant
//!   is just more stages in the queues — the *zero-configuration
//!   partition switch*.
//! * The reconfiguring spatial partitioner (what MPS deployments without
//!   a pool do) resizes partitions per arrival, stalling the whole device
//!   for each reconfiguration.
//! * The naive static partitioner neither reconfigures nor over-
//!   subscribes.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin churn [--sim-secs N]`

use sgprs_core::{
    offline, ContextPoolSpec, NaiveConfig, NaiveScheduler, ReconfigConfig, ReconfigScheduler,
    SgprsConfig, SgprsScheduler,
};
use sgprs_dnn::{models, CostModel};
use sgprs_rt::{SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, _) = sgprs_bench::parse_args(&args);
    let sim_secs = sim_secs.max(4);
    let n_tasks = 12;

    // Tenants arrive every 200 ms starting at t = 600 ms.
    let pool = ContextPoolSpec::new(3, 1.5);
    let base = offline::compile_network_task(
        "cam",
        &models::resnet18(1, 224),
        &CostModel::calibrated(),
        6,
        SimDuration::from_micros(33_333),
        &pool,
    )
    .expect("six stages");
    let mut tasks = Vec::with_capacity(n_tasks);
    for i in 0..n_tasks {
        let mut t = base.clone();
        t.spec.name = format!("cam-{i}");
        t.spec.phase = SimDuration::from_millis(600 + 200 * i as u64);
        tasks.push(t);
    }
    let end = SimTime::ZERO + SimDuration::from_secs(sim_secs);

    println!("== tenant churn: {n_tasks} arrivals, one every 200 ms ==");
    println!(
        "{:<28} {:>10} {:>8} {:>8} {:>12}",
        "scheduler", "total FPS", "DMR", "misses", "repartitions"
    );

    let mut sg = SgprsScheduler::new(SgprsConfig::new(pool), tasks.clone());
    let m = sg.run(end);
    println!(
        "{:<28} {:>10.1} {:>7.1}% {:>8} {:>12}",
        "SGPRS (seamless)",
        m.total_fps,
        m.dmr * 100.0,
        m.late + m.skipped + m.dropped,
        0
    );

    let mut rec = ReconfigScheduler::new(ReconfigConfig::new(), tasks.clone());
    let m = rec.run(end);
    println!(
        "{:<28} {:>10.1} {:>7.1}% {:>8} {:>12}",
        "reconfiguring partitioner",
        m.total_fps,
        m.dmr * 100.0,
        m.late + m.skipped + m.dropped,
        rec.repartition_count()
    );

    let mut naive = NaiveScheduler::new(NaiveConfig::new(3), tasks);
    let m = naive.run(end);
    println!(
        "{:<28} {:>10.1} {:>7.1}% {:>8} {:>12}",
        "naive static partitioner",
        m.total_fps,
        m.dmr * 100.0,
        m.late + m.skipped + m.dropped,
        0
    );
    println!();
    println!("the reconfiguration stalls are the cost SGPRS's zero-configuration switch avoids");
}
