//! Regenerates **Figure 4**: total FPS (4a) and deadline miss rate (4b)
//! for Scenario 2 (`np = 3` contexts), sweeping 1..=30 identical
//! ResNet18@30fps tasks over the naive baseline and SGPRS at
//! over-subscription 1.0 / 1.5 / 2.0.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin fig4_scenario2 [--sim-secs N] [--csv]`

use sgprs_bench::{paper_task_counts, parse_args, print_sweep};
use sgprs_workload::{scenario2_variants, sweep};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, csv) = parse_args(&args);
    let variants = scenario2_variants(sim_secs);
    let series = sweep::run_sweeps(&variants, &paper_task_counts());
    print_sweep(&series, csv, "Figure 4");
}
