//! **Streaming-arrival throughput bench**: drives a 1000-node fleet's
//! dispatch layer from a generator-backed [`ArrivalStream`] — no
//! pre-materialised trace — and reports sustained arrivals/sec plus the
//! interner's memory bound. The default run streams one million tenants
//! (brisk churn, 2–4 s lifetimes, 500 ms queue patience) while the
//! tenant-id table stays sized by the *concurrently active* population:
//! the printed `id_capacity` equals `peak_active` regardless of how many
//! tenants the trace contained, which is the O(active) claim this bench
//! exists to demonstrate.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin fleet_stream \
//!     [--tenants N] [--csv]`

use sgprs_bench::report::{AllocStats, BenchReport, CountingAlloc};
use sgprs_cluster::{
    ArrivalStream, ChurnConfig, Fleet, FleetConfig, NodeSpec, PlacementPolicy, Span,
};
use sgprs_gpu_sim::GpuSpec;
use sgprs_rt::SimDuration;

/// Count heap traffic so the perf sidecar can report allocs/event.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Nodes in the fleet under test.
const NODES: usize = 1000;
/// Mean gap between tenant arrivals; together with `--tenants` this
/// fixes the simulated horizon.
const INTERARRIVAL_MS: u64 = 2;

/// Parses `--tenants N` / `--csv`. Returns `(tenants, csv)`.
fn parse(args: &[String]) -> (u64, bool) {
    let mut tenants: u64 = 1_000_000;
    let mut csv = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenants" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    tenants = v;
                    i += 1;
                }
            }
            "--csv" => csv = true,
            _ => {}
        }
        i += 1;
    }
    (tenants.max(1), csv)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (tenants, csv) = parse(&args);

    // Horizon sized so the sampler emits at least `tenants` arrivals
    // (5% headroom over the mean absorbs interarrival jitter); short
    // lifetimes and a 500 ms patience keep both the resident and the
    // queued population small while the stream churns through millions.
    let horizon = SimDuration::from_millis(tenants * INTERARRIVAL_MS * 21 / 20);
    let churn = ChurnConfig {
        mean_interarrival: SimDuration::from_millis(INTERARRIVAL_MS),
        min_lifetime: SimDuration::from_secs(2),
        max_lifetime: SimDuration::from_secs(4),
        max_wait: Some(SimDuration::from_millis(500)),
        ..ChurnConfig::default()
    };

    let nodes = (0..NODES)
        .map(|i| NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()))
        .collect();
    // Round-robin keeps dispatch O(1) per arrival while capacity is
    // free, so the bench measures the stream + interner + admission
    // path rather than a full least-utilisation scan of 1000 nodes.
    let mut cfg = FleetConfig::new(nodes).with_profiling();
    cfg.placement = PlacementPolicy::RoundRobin;
    let mut fleet = Fleet::new(cfg);

    let arrivals = ArrivalStream::generate(&churn, horizon, 0x51_7265_414d);
    assert!(arrivals.is_streaming(), "bench must exercise the lazy path");

    let alloc_before = AllocStats::snapshot();
    let started = std::time::Instant::now();
    let replay = fleet.replay_dispatch(arrivals, horizon);
    let wall = started.elapsed().as_secs_f64();
    let alloc = AllocStats::snapshot().since(&alloc_before);
    let rate = replay.arrivals as f64 / wall.max(1e-9);

    assert!(
        replay.id_capacity == replay.peak_active,
        "id table leaked: capacity {} != peak active {}",
        replay.id_capacity,
        replay.peak_active
    );

    if csv {
        println!(
            "nodes,arrivals,placed,degraded,queued,infeasible,duplicates,departures,expired,\
             admitted_after_wait,peak_active,id_capacity,final_active,wall_ms,arrivals_per_sec"
        );
        println!(
            "{NODES},{},{},{},{},{},{},{},{},{},{},{},{},{:.0},{rate:.0}",
            replay.arrivals,
            replay.placed,
            replay.degraded,
            replay.queued,
            replay.infeasible,
            replay.duplicates,
            replay.departures,
            replay.expired,
            replay.admitted_after_wait,
            replay.peak_active,
            replay.id_capacity,
            replay.final_active,
            wall * 1e3
        );
    } else {
        println!("== fleet_stream: {NODES} nodes, generator-driven arrivals ==");
        println!(
            "streamed {} arrivals in {:.2}s wall — {:.0} arrivals/sec",
            replay.arrivals, wall, rate
        );
        println!(
            "placed {} ({} degraded), queued {}, infeasible {}, duplicates {}",
            replay.placed, replay.degraded, replay.queued, replay.infeasible, replay.duplicates
        );
        println!(
            "departures {}, expired waiters {}, admitted after wait {}",
            replay.departures, replay.expired, replay.admitted_after_wait
        );
        println!(
            "memory bound: peak_active {} == id_capacity {} (final_active {}) — \
             O(active), independent of the {} tenants streamed",
            replay.peak_active, replay.id_capacity, replay.final_active, replay.arrivals
        );
    }
    // The perf sidecar: replay runs with the span profiler armed; the
    // events here are the stream pulls the dispatch replay consumed.
    let profile = fleet
        .span_profile()
        .expect("the replay ran with profiling armed");
    let events = profile.calls(Span::ArrivalPull);
    let bench = BenchReport::new(
        "fleet_stream",
        &format!("stream x{NODES} round-robin churn"),
        "dispatch-replay",
        NODES as u64,
        replay.arrivals,
        events,
        wall * 1e3,
        &profile,
        alloc,
    );
    match bench.write_sidecar() {
        Ok(name) => {
            if !csv {
                println!(
                    "perf sidecar {name}: {} pulls, {:.2} allocs/pull",
                    bench.events,
                    bench.allocs_per_event()
                );
            }
        }
        Err(e) => eprintln!("perf sidecar write failed: {e}"),
    }
}
