//! **Response-time experiment** (beyond the paper's FPS/DMR metrics):
//! median / p95 / worst-case responses and on-time fractions for every
//! scheduler variant, below and above the pivot point.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin latency_cdf [--sim-secs N]`

use sgprs_workload::latency;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, _) = sgprs_bench::parse_args(&args);
    for (contexts, tasks, note) in [
        (3usize, 18usize, "below the pivot"),
        (3, 26, "just past the pivot"),
        (3, 30, "heavy overload"),
    ] {
        println!("== np={contexts}, {tasks} tasks ({note}) ==");
        let summaries = latency::compare_at(contexts, tasks, sim_secs);
        print!("{}", latency::render(&summaries));
        println!();
    }
}
