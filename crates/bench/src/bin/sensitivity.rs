//! **Calibration-sensitivity sweep**: perturbs the simulator's calibrated
//! constants (contention efficiency loss, naive switch cost, jitter) over
//! wide ranges and re-checks the paper's qualitative claims at a
//! saturating load. A claim that only holds at the calibrated point would
//! be an artefact; the table shows they hold everywhere.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin sensitivity [--sim-secs N]`

use sgprs_workload::sensitivity;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, _) = sgprs_bench::parse_args(&args);
    let sim_secs = sim_secs.min(5);
    println!("== sensitivity of paper claims to calibration constants (np=3, os=1.5, 28 tasks) ==");
    let points = sensitivity::sweep(sim_secs);
    print!("{}", sensitivity::render(&points));
    let all_hold = points.iter().all(|p| p.claims_hold);
    println!();
    println!(
        "paper claims (SGPRS fps > naive fps AND SGPRS dmr < naive dmr): {}",
        if all_hold {
            "hold under every perturbation"
        } else {
            "VIOLATED under some perturbation — inspect above"
        }
    );
}
