//! **Heterogeneous multi-tenant sweep** (beyond the paper's identical-task
//! setup, but exactly the deployment §I motivates): a growing population
//! of mixed tenants — ResNet18, MobileNet, and AlexNet at 30 fps — on
//! SGPRS vs the naive static partitioner.
//!
//! Heterogeneity is where static spatial partitioning hurts most: equal
//! partitions are too small for the heavy tenants and waste SMs on the
//! light ones, while SGPRS's shared over-subscribed pool lets every stage
//! take what it needs.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin heterogeneous [--sim-secs N]`

use sgprs_core::{ContextPoolSpec, NaiveConfig, NaiveScheduler, SgprsConfig, SgprsScheduler};
use sgprs_rt::{SimDuration, SimTime};
use sgprs_workload::generator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sim_secs, _) = sgprs_bench::parse_args(&args);
    let sim_secs = sim_secs.max(3);
    let pool = ContextPoolSpec::new(3, 1.5);
    let end = SimTime::ZERO + SimDuration::from_secs(sim_secs);

    println!("== heterogeneous tenants (resnet18 / mobilenet / alexnet @ 30 fps), np=3 ==");
    println!(
        "{:>7} {:>14} {:>10} {:>14} {:>10}",
        "tenants", "SGPRS fps", "SGPRS dmr", "naive fps", "naive dmr"
    );
    for n in [6usize, 12, 18, 24, 30, 36] {
        let tasks = generator::mixed_model_tasks(n, 30.0, 6, &pool);
        let sgprs = SgprsScheduler::new(SgprsConfig::new(pool.clone()), tasks.clone()).run(end);
        let naive = NaiveScheduler::new(NaiveConfig::new(3), tasks).run(end);
        println!(
            "{n:>7} {:>14.1} {:>9.1}% {:>14.1} {:>9.1}%",
            sgprs.total_fps,
            sgprs.dmr * 100.0,
            naive.total_fps,
            naive.dmr * 100.0
        );
    }
    println!();
    println!("mixed models sharpen the gap: static partitions are sized for the average tenant");
}
