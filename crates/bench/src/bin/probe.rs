//! **Calibration probe**: fine-grained view of the saturation regime for
//! the paper's best configuration (np=3, os=1.5). Prints stage WCETs and,
//! for each task count around the pivot, FPS / DMR / response tail /
//! per-context busy fractions under two admission policies — the raw data
//! behind the calibration choices documented in DESIGN.md §5.
//!
//! Usage: `cargo run --release -p sgprs-bench --bin probe`

use sgprs_core::{offline, Admission, ContextPoolSpec, SgprsConfig, SgprsScheduler};
use sgprs_dnn::{models, CostModel};
use sgprs_rt::{SimDuration, SimTime};

fn main() {
    let pool = ContextPoolSpec::new(3, 1.5);
    let net = models::resnet18(1, 224);
    let task = offline::compile_network_task(
        "t",
        &net,
        &CostModel::calibrated(),
        6,
        SimDuration::from_micros(33_333),
        &pool,
    )
    .expect("six stages");
    println!(
        "stage WCETs: {:?}",
        task.spec
            .stages
            .iter()
            .map(|s| format!("{}", s.wcet))
            .collect::<Vec<_>>()
    );
    for n in [24, 25, 26, 27, 28, 29, 30] {
        for adm in [Admission::FrameBuffer, Admission::SkipIfBusy] {
            let mut cfg = SgprsConfig::new(pool.clone());
            cfg.admission = adm;
            let mut s = SgprsScheduler::new(cfg, vec![task.clone(); n]);
            let m = s.run(SimTime::ZERO + SimDuration::from_secs(5));
            let busy: Vec<String> = (0..3)
                .map(|c| {
                    format!(
                        "{:.2}",
                        s.engine().busy_fraction(sgprs_gpu_sim::ContextId(c))
                    )
                })
                .collect();
            println!(
                "n={n} {adm:?} fps={:.1} dmr={:.2} late={} skip={} p95={} busy={busy:?}",
                m.total_fps, m.dmr, m.late, m.skipped, m.response_p95
            );
        }
    }
}
