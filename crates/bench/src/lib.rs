//! Shared helpers for the SGPRS benchmark binaries and Criterion benches.
//!
//! The binaries regenerate the paper's figures:
//!
//! * `fig1_speedup` — Figure 1 (per-operation speedup vs SM count).
//! * `fig3_scenario1` — Figure 3 (total FPS and DMR, `np = 2`).
//! * `fig4_scenario2` — Figure 4 (total FPS and DMR, `np = 3`).
//! * `headline_numbers` — the §V prose numbers (pivot points, plateaus,
//!   FPS-drop percentages).
//! * `ablation` — design-choice ablations beyond the paper.
//!
//! The fleet-scale bins (`fleet`, `fleet_stream`, `fleet_events_perf`)
//! additionally emit machine-readable `BENCH_<bin>.json` perf sidecars
//! through the shared [`report`] module — see its docs for the schema
//! and the regression gate.

// `deny`, not `forbid`: the counting global allocator in [`report`]
// carries the one justified `#[allow(unsafe_code)]` in this crate.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use sgprs_workload::sweep::SweepSeries;

/// The task counts swept in Figures 3 and 4 (1..=30).
#[must_use]
pub fn paper_task_counts() -> Vec<usize> {
    (1..=30).collect()
}

/// Default simulated seconds per sweep point for binaries. Ten simulated
/// seconds ≈ 300 releases per task, enough for stable FPS/DMR estimates.
pub const DEFAULT_SIM_SECS: u64 = 10;

/// Parses a `--sim-secs N` / `--csv` style argument list shared by the
/// figure binaries. Returns `(sim_secs, csv)`.
#[must_use]
pub fn parse_args(args: &[String]) -> (u64, bool) {
    let mut sim_secs = DEFAULT_SIM_SECS;
    let mut csv = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sim-secs" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    sim_secs = v;
                    i += 1;
                }
            }
            "--csv" => csv = true,
            _ => {}
        }
        i += 1;
    }
    (sim_secs, csv)
}

/// Emits a sweep in the selected format on stdout, FPS table first, then
/// DMR (the `a` and `b` halves of the paper's figures).
pub fn print_sweep(series: &[SweepSeries], csv: bool, figure: &str) {
    use sgprs_workload::report;
    if csv {
        print!("{}", report::sweep_csv(series));
        return;
    }
    println!("== {figure}a: total FPS ==");
    println!("{}", report::sweep_table(series, report::SweepMetric::TotalFps));
    println!("== {figure}b: deadline miss rate ==");
    println!("{}", report::sweep_table(series, report::SweepMetric::Dmr));
    println!("== summary ==");
    print!("{}", report::headline_summary(series));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_cover_one_to_thirty() {
        let c = paper_task_counts();
        assert_eq!(c.first(), Some(&1));
        assert_eq!(c.last(), Some(&30));
        assert_eq!(c.len(), 30);
    }

    #[test]
    fn parse_args_defaults_and_overrides() {
        assert_eq!(parse_args(&[]), (DEFAULT_SIM_SECS, false));
        let args: Vec<String> = ["--sim-secs", "3", "--csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&args), (3, true));
        let junk: Vec<String> = ["--sim-secs", "abc"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_args(&junk), (DEFAULT_SIM_SECS, false));
    }
}
