//! Microbenchmarks of the scheduler's hot paths: EDF queues, job release
//! with absolute-deadline stamping, kernel submission + processor-sharing
//! reflow, and offline compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use sgprs_core::{offline, ContextPoolSpec};
use sgprs_dnn::{models, CostModel};
use sgprs_gpu_sim::{
    ContentionModel, ContextConfig, ContextId, GpuEngine, GpuSpec, KernelDesc, OpClass,
    StreamClass, WorkProfile,
};
use sgprs_rt::{EdfQueue, Job, PriorityBands, PriorityLevel, SimDuration, SimTime, TaskId};
use std::hint::black_box;

fn bench_queues(c: &mut Criterion) {
    c.bench_function("hot/edf_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EdfQueue::new();
            for i in 0u64..1_000 {
                q.push(i, SimTime::from_nanos((i * 2_654_435_761) % 1_000_000));
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.item);
            }
            black_box(acc)
        })
    });

    c.bench_function("hot/priority_bands_mixed_1k", |b| {
        b.iter(|| {
            let mut bands = PriorityBands::new();
            for i in 0u64..1_000 {
                let level = match i % 3 {
                    0 => PriorityLevel::High,
                    1 => PriorityLevel::Medium,
                    _ => PriorityLevel::Low,
                };
                bands.push(level, i, SimTime::from_nanos(i * 7 % 50_000));
            }
            let mut acc = 0u64;
            while let Some((_, e)) = bands.pop() {
                acc = acc.wrapping_add(e.item);
            }
            black_box(acc)
        })
    });
}

fn bench_release(c: &mut Criterion) {
    let pool = ContextPoolSpec::new(2, 1.5);
    let task = offline::compile_network_task(
        "t",
        &models::resnet18(1, 224),
        &CostModel::calibrated(),
        6,
        SimDuration::from_micros(33_333),
        &pool,
    )
    .expect("six stages");
    c.bench_function("hot/job_release_with_deadlines", |b| {
        b.iter(|| black_box(Job::release(TaskId(0), 0, &task.spec, SimTime::from_nanos(12345))))
    });
    c.bench_function("hot/offline_compile_resnet18_6_stages", |b| {
        b.iter(|| {
            black_box(
                offline::compile_network_task(
                    "t",
                    &models::resnet18(1, 224),
                    &CostModel::calibrated(),
                    6,
                    SimDuration::from_micros(33_333),
                    &pool,
                )
                .expect("six stages"),
            )
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("hot/engine_submit_drain_256", |b| {
        b.iter(|| {
            let mut e = GpuEngine::builder(GpuSpec::rtx_2080_ti())
                .contention_model(ContentionModel::ideal())
                .context(ContextConfig::new(34))
                .context(ContextConfig::new(34))
                .build();
            let mut done = 0;
            for i in 0..256 {
                let ctx = ContextId(i % 2);
                let class = if i % 4 < 2 {
                    StreamClass::High
                } else {
                    StreamClass::Low
                };
                let desc =
                    KernelDesc::new("k", WorkProfile::single(OpClass::Convolution, 100_000.0));
                while e.submit(ctx, class, desc.clone()).is_err() {
                    e.run_next();
                    done += 1;
                }
            }
            done += e.drain().len();
            black_box(done)
        })
    });
}

criterion_group!(benches, bench_queues, bench_release, bench_engine);
criterion_main!(benches);
