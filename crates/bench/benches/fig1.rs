//! Criterion bench for **Figure 1** regeneration: per-operation speedup
//! curves. The companion binary `fig1_speedup` prints the actual figure;
//! this bench tracks the cost of the speedup model itself (it sits on the
//! scheduler's hot path via finish-time estimation).

use criterion::{criterion_group, criterion_main, Criterion};
use sgprs_workload::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/generate_all_curves", |b| {
        b.iter(|| black_box(fig1::generate()))
    });

    let model = sgprs_gpu_sim::SpeedupModel::calibrated_rtx_2080_ti();
    c.bench_function("fig1/speedup_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for m in 1..=68 {
                acc += model.speedup(sgprs_gpu_sim::OpClass::Convolution, f64::from(m));
            }
            black_box(acc)
        })
    });

    let net = sgprs_dnn::models::resnet18(1, 224);
    let profile = net.work_profile(&sgprs_dnn::CostModel::calibrated());
    c.bench_function("fig1/resnet18_effective_speedup", |b| {
        b.iter(|| black_box(profile.effective_speedup(&model, black_box(34.0))))
    });
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
