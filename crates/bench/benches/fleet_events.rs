//! Criterion bench for the **event-driven fleet core**: the same
//! serving scenario executed on the epoch grid vs the discrete-event
//! engine (`Fleet::run_events`). The event path replaces per-epoch
//! scheduler reconstruction with a fluid job model on a binary-heap
//! event queue, so its wall-clock scales with event volume (releases ×
//! tenants) instead of epoch count × scheduler state — this bench keeps
//! both on the same trace so the trade is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use sgprs_cluster::{ChurnTrace, DispatchOutcome, Fleet, FleetConfig, ModelKind, NodeSpec, TenantSpec};
use sgprs_gpu_sim::GpuSpec;
use sgprs_rt::SimDuration;
use std::hint::black_box;

fn loaded_fleet() -> Fleet {
    let cfg = FleetConfig::new(
        (0..4)
            .map(|i| NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()))
            .collect(),
    );
    let mut fleet = Fleet::new(cfg);
    for i in 0..4 * 8 {
        let outcome =
            fleet.dispatch(TenantSpec::new(format!("t-{i}"), ModelKind::ResNet18, 30.0));
        assert!(matches!(outcome, DispatchOutcome::Placed(_)));
    }
    fleet
}

/// One simulated second of a 4-node, 32-tenant fleet: epoch grid vs
/// event queue.
fn bench_event_vs_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_events");
    group.sample_size(10);
    group.bench_function("epoch_1s", |b| {
        let mut fleet = loaded_fleet();
        b.iter(|| black_box(fleet.run(ChurnTrace::new(), SimDuration::from_secs(1))));
    });
    group.bench_function("event_1s", |b| {
        let mut fleet = loaded_fleet();
        b.iter(|| black_box(fleet.run_events(ChurnTrace::new(), SimDuration::from_secs(1))));
    });
    group.finish();
}

criterion_group!(benches, bench_event_vs_epoch);
criterion_main!(benches);
