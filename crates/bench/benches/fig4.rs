//! Criterion bench for **Figure 4** (Scenario 2, `np = 3`): measures
//! representative sweep points, including the paper's os=1.5 vs os=2.0
//! sweet-spot pair at full load. The companion binary `fig4_scenario2`
//! regenerates the full figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgprs_workload::{SchedulerKind, ScenarioSpec};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scenario2");
    group.sample_size(10);
    for (label, kind) in [
        ("naive", SchedulerKind::Naive),
        (
            "sgprs_1.5",
            SchedulerKind::Sgprs {
                oversubscription: 1.5,
            },
        ),
        (
            "sgprs_2.0",
            SchedulerKind::Sgprs {
                oversubscription: 2.0,
            },
        ),
    ] {
        for n_tasks in [15usize, 30] {
            let spec = ScenarioSpec::new(3, kind, 1);
            group.bench_with_input(BenchmarkId::new(label, n_tasks), &n_tasks, |b, &n| {
                b.iter(|| black_box(spec.run(n)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
