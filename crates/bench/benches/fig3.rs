//! Criterion bench for **Figure 3** (Scenario 1, `np = 2`): measures the
//! cost of representative sweep points for every curve. The companion
//! binary `fig3_scenario1` regenerates the full figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgprs_workload::{SchedulerKind, ScenarioSpec};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_scenario1");
    group.sample_size(10);
    for (label, kind) in [
        ("naive", SchedulerKind::Naive),
        (
            "sgprs_1.5",
            SchedulerKind::Sgprs {
                oversubscription: 1.5,
            },
        ),
    ] {
        for n_tasks in [8usize, 24] {
            let spec = ScenarioSpec::new(2, kind, 1);
            group.bench_with_input(BenchmarkId::new(label, n_tasks), &n_tasks, |b, &n| {
                b.iter(|| black_box(spec.run(n)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
