//! Criterion bench for the fleet **dispatch hot path**: admission
//! evaluation and placement over many nodes — the per-arrival cost a
//! serving front-end pays before any GPU work happens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgprs_cluster::{
    AdmissionController, FleetNode, ModelKind, NodeSpec, Placer, PlacementPolicy, TenantSpec,
};
use sgprs_gpu_sim::GpuSpec;
use std::hint::black_box;

fn fleet(n_nodes: usize, resident_per_node: usize) -> Vec<FleetNode> {
    (0..n_nodes)
        .map(|i| {
            let mut node =
                FleetNode::new(NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()));
            for j in 0..resident_per_node {
                node.tenants.push(TenantSpec::new(
                    format!("t-{i}-{j}"),
                    ModelKind::ResNet18,
                    30.0,
                ));
            }
            node
        })
        .collect()
}

fn bench_admission(c: &mut Criterion) {
    let ctl = AdmissionController::default();
    let node = &fleet(1, 12)[0];
    let candidate = TenantSpec::new("new", ModelKind::MobileNet, 30.0);
    c.bench_function("admission_evaluate_12_resident", |b| {
        b.iter(|| black_box(ctl.evaluate(black_box(node), black_box(&candidate))))
    });
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    for n_nodes in [4usize, 16, 64] {
        let nodes = fleet(n_nodes, 8);
        let ctl = AdmissionController::default();
        let candidate = TenantSpec::new("new", ModelKind::ResNet18, 30.0);
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastUtilization,
            PlacementPolicy::BestFit,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy}"), n_nodes),
                &n_nodes,
                |b, _| {
                    let mut placer = Placer::new(policy);
                    b.iter(|| black_box(placer.place(&nodes, &candidate, &ctl)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_admission, bench_placement);
criterion_main!(benches);
