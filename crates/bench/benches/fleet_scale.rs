//! Criterion bench for fleet **scale-out**: the per-arrival planning
//! hot path at 256–1024 nodes — flat O(nodes) scan vs the ordered
//! shard scan vs power-of-two-choices routing (whose cost is
//! independent of the shard count, so its `dispatch_plan` line should
//! stay flat from 256 to 1024 nodes while the flat scan grows
//! linearly) — plus sequential vs parallel per-epoch node execution
//! (the per-epoch wall-clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgprs_cluster::{
    ChurnTrace, DispatchOutcome, Fleet, FleetConfig, ModelKind, NodeSpec, ShardRouter,
    TenantSpec,
};
use sgprs_gpu_sim::GpuSpec;
use sgprs_rt::SimDuration;
use std::hint::black_box;

fn node_specs(n_nodes: usize) -> Vec<NodeSpec> {
    (0..n_nodes)
        .map(|i| NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()))
        .collect()
}

/// How the benched fleet routes arrivals.
#[derive(Clone, Copy)]
enum Dispatch {
    Flat,
    Sharded(usize, ShardRouter),
}

/// A fleet pre-loaded through its own dispatcher so shard summaries and
/// resident populations match a live serving state.
fn loaded_fleet(n_nodes: usize, resident_per_node: usize, dispatch: Dispatch) -> Fleet {
    let mut cfg = FleetConfig::new(node_specs(n_nodes));
    cfg = match dispatch {
        Dispatch::Flat => cfg,
        Dispatch::Sharded(size, ShardRouter::Scan) => cfg.with_sharding(size),
        Dispatch::Sharded(size, ShardRouter::P2c) => cfg.with_p2c_sharding(size),
    };
    let mut fleet = Fleet::new(cfg);
    for i in 0..n_nodes * resident_per_node {
        let outcome = fleet.dispatch(TenantSpec::new(
            format!("t-{i}"),
            ModelKind::ResNet18,
            30.0,
        ));
        assert!(
            matches!(outcome, DispatchOutcome::Placed(_)),
            "pre-load stays under admission capacity"
        );
    }
    fleet
}

/// The per-arrival placement decision (no commit): flat O(nodes) scan
/// vs the ordered shard scan vs power-of-two-choices routing, at the
/// 256/512/1024-node sizes the metro scenario dispatches in.
fn bench_dispatch_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_plan");
    group.sample_size(10);
    let candidate = TenantSpec::new("probe", ModelKind::ResNet18, 30.0);
    for n_nodes in [256usize, 512, 1024] {
        for (label, dispatch) in [
            ("flat", Dispatch::Flat),
            ("sharded8", Dispatch::Sharded(8, ShardRouter::Scan)),
            ("p2c8", Dispatch::Sharded(8, ShardRouter::P2c)),
        ] {
            let mut fleet = loaded_fleet(n_nodes, 8, dispatch);
            group.bench_with_input(BenchmarkId::new(label, n_nodes), &n_nodes, |b, _| {
                b.iter(|| black_box(fleet.plan(black_box(&candidate))))
            });
        }
    }
    group.finish();
}

/// One simulated epoch over a 16-node fleet: sequential node loop vs the
/// scoped-thread fan-out (results are bit-identical; only wall-clock
/// differs).
fn bench_epoch_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_epoch");
    group.sample_size(10);
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        let mut cfg = FleetConfig::new(node_specs(16));
        if !parallel {
            cfg = cfg.sequential();
        }
        let mut fleet = Fleet::new(cfg);
        for i in 0..16 * 8 {
            let outcome =
                fleet.dispatch(TenantSpec::new(format!("t-{i}"), ModelKind::ResNet18, 30.0));
            assert!(matches!(outcome, DispatchOutcome::Placed(_)));
        }
        group.bench_function(label, |b| {
            b.iter(|| black_box(fleet.run(ChurnTrace::new(), SimDuration::from_secs(1))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_plan, bench_epoch_execution);
criterion_main!(benches);
