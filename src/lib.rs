//! Umbrella crate for the SGPRS reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples under
//! `examples/` and the integration tests under `tests/` can use a single
//! dependency. Library users should depend on the individual crates
//! (`sgprs-core`, `sgprs-gpu-sim`, ...) directly.

pub use sgprs_core as core;
pub use sgprs_dnn as dnn;
pub use sgprs_gpu_sim as gpu_sim;
pub use sgprs_rt as rt;
pub use sgprs_workload as workload;
