//! Umbrella crate for the SGPRS reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples under
//! `examples/` and the integration tests under `tests/` can use a single
//! dependency. Library users should depend on the individual crates
//! (`sgprs-core`, `sgprs-gpu-sim`, ...) directly.
//!
//! # Layer map
//!
//! * [`rt`] — simulated time, the periodic task model, EDF queues, and
//!   classic schedulability analysis.
//! * [`gpu_sim`] — the discrete-event GPU: contexts, prioritised
//!   streams, calibrated speedup curves, contention, tracing.
//! * [`dnn`] — the model zoo (ResNet18/34, VGG-16, AlexNet, MobileNet),
//!   the cost model, and stage partitioning.
//! * [`core`] — the SGPRS scheduler itself plus the naive and
//!   reconfiguring baselines, with shared metrics.
//! * [`cluster`] — the multi-GPU fleet: generator-driven arrival
//!   streams (`cluster::ArrivalStream`, lazy pull in O(active-tenants)
//!   memory, byte-identical to the materialised trace) feeding
//!   dispatching (flat, or two-level
//!   sharded via `cluster::ShardedFleet`, with `cluster::ShardRouter`
//!   choosing the ordered shard scan or O(1) power-of-two-choices
//!   routing for 512–1024-node fleets), utilisation-bound admission
//!   control, placement policies, policy-ordered wait queueing
//!   (`cluster::QueuePolicy`: FIFO, priority-weight, earliest queue
//!   deadline, weighted-fair with aging) with an fps re-pricing ladder
//!   (admit degraded instead of rejecting, upgrade back in place as
//!   capacity frees) and demand-aware expiry (provably hopeless waiters
//!   drop early), tenant churn with names interned to dense `u32` ids
//!   at the fleet boundary (`cluster::TenantInterner`: first-appearance
//!   order, LIFO slot recycling, names resolved only at the JSON render
//!   edge — the id table stays sized by the peak active population,
//!   millions of tenants per run), migration (LIFO or demand-aware
//!   victim selection), parallel per-epoch node execution with deterministic
//!   metrics, and fleet-level metrics with a golden-pinned,
//!   schema-versioned JSON export. Every dispatch decision lives in the
//!   shared `cluster::policy` kernel, consumed identically by both
//!   execution modes: the classic epoch grid, and the `cluster::event`
//!   discrete-event core (`Fleet::run_events`) — exact
//!   release/departure boundaries, zero epoch truncation, and mid-epoch
//!   migration paying an explicit state-transfer stall while re-pricing
//!   switches stay free, all driven by a hierarchical timing-wheel
//!   event queue whose pop order is byte-identical to the binary heap
//!   it replaced (O(1) amortised push/pop, allocation-free steady
//!   state, ~0.4 allocs/event at metro scale with versioned per-node
//!   capacity caches). The opt-in `cluster::telemetry` layer observes
//!   both engines without steering either: windowed time-series,
//!   mergeable deterministic quantile sketches (p50/p90/p99 queue wait
//!   and job latency in O(1) memory per node), an opt-in decision-trace
//!   ring, and hot-path profile counters — exported as schema v3 when
//!   enabled, byte-identical to the base schema v2 export when off.
//! * [`workload`] — scenarios and sweeps reproducing the paper's figures
//!   and the fleet-serving experiments beyond them.

pub use sgprs_cluster as cluster;
pub use sgprs_core as core;
pub use sgprs_dnn as dnn;
pub use sgprs_gpu_sim as gpu_sim;
pub use sgprs_rt as rt;
pub use sgprs_workload as workload;
