//! Offline stand-in for the subset of `rand` 0.9 used by the suite:
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer and
//! float ranges, and [`rngs::SmallRng`].
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! deterministic, well distributed, and fast. Distribution details (e.g.
//! modulo bias on astronomically large integer ranges) are simplified —
//! acceptable for simulation jitter and workload generation.

#![forbid(unsafe_code)]

/// A source of randomness, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range values can be drawn from, mirroring `rand::distr::uniform`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.random_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let x: usize = rng.random_range(0usize..8);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn: {seen:?}");
        for _ in 0..1_000 {
            let x: u64 = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&x));
        }
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.random_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
