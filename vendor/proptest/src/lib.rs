//! Offline stand-in for the subset of `proptest` the suite uses.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { ... } }` form with range strategies over integers and
//! floats, tuples, `any::<T>()`, and `prop::collection::vec`. Cases are
//! drawn from a deterministic per-test generator (seeded from the test
//! name), so failures reproduce across runs. The `PROPTEST_CASES`
//! environment variable overrides every block's configured case count
//! (the real crate honours the same variable; CI pins it for
//! reproducible runs). Shrinking is not implemented: a failing case
//! panics with the usual assertion message, which is enough to diagnose
//! the invariant that broke.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The case count a `proptest!` block actually runs: the `PROPTEST_CASES`
/// environment variable when set and parseable (mirroring the real
/// crate's env override, which CI pins for reproducibility), else the
/// block's configured count.
#[must_use]
pub fn resolved_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// Marker returned by `prop_assume!` when a sampled case does not satisfy
/// the property's precondition; the case is silently discarded.
#[derive(Debug)]
pub struct CaseSkip;

/// Deterministic per-test random source.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A generator seeded from the test name, so every run of a given
    /// property sees the same case sequence.
    #[must_use]
    pub fn for_case(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random_f64()
    }
}

/// A source of random values of one type, mirroring `proptest::Strategy`
/// (generation only; no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with random length and random elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A vector strategy drawing lengths from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                self.size.clone().sample(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest!` macro: declares property tests whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolved_cases(__config.cases);
            let mut __rng = $crate::TestRng::for_case(::core::stringify!($name));
            for __case in 0..__cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                // The closure is what lets `prop_assume!` early-return.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::CaseSkip> = (move || {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                let _ = (__case, __outcome);
            }
        }
    )*};
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { ::core::assert!($($tt)+) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { ::core::assert_eq!($($tt)+) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { ::core::assert_ne!($($tt)+) };
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseSkip);
        }
    };
}

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_tuples_and_vecs_sample_in_bounds(
            pairs in prop::collection::vec((0u8..8, 1.0f64..2.0), 1..10),
            seed in any::<u64>(),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 10);
            for (tag, x) in &pairs {
                prop_assert!(*tag < 8);
                prop_assert!((1.0..2.0).contains(x));
            }
            let _ = seed;
        }

        #[test]
        fn assume_discards_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_case("x");
        let mut b = crate::TestRng::for_case("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
