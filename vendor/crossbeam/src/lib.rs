//! Offline stand-in for `crossbeam`'s scoped threads, implemented on
//! `std::thread::scope` (stable since Rust 1.63, which post-dates the
//! real crossbeam scope API the suite was written against).
//!
//! Only the surface the suite uses is provided: [`scope`] returning a
//! `Result`, and [`Scope::spawn`] whose closure receives the scope again
//! (crossbeam's signature, so nested spawns keep working).

#![forbid(unsafe_code)]

use std::any::Any;

/// Error type carried by a failed [`scope`] (never produced here: panics
/// in scoped threads propagate when `std::thread::scope` joins them).
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A scope handle that can spawn threads borrowing from the environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Creates a scope in which threads may borrow non-`'static` data, joining
/// them all before returning. Panics from scoped threads propagate on
/// join, so the `Ok` wrapper mirrors crossbeam's API for callers that
/// `.expect(...)` the result.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .expect("scope succeeds");
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawns_compile_and_run() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("scope succeeds");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
