//! No-op stand-ins for serde's `Serialize` / `Deserialize` derive macros.
//!
//! The workspace builds offline, so the real `serde_derive` is unavailable.
//! The suite only uses the derives as markers (nothing serialises through
//! serde's data model yet — reports are rendered by hand), so expanding to
//! nothing preserves behaviour while keeping every `#[derive(Serialize,
//! Deserialize)]` in the source compatible with the real crates.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
