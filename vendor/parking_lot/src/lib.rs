//! Offline stand-in for `parking_lot`: a [`Mutex`] with the poison-free
//! `lock()` signature, backed by `std::sync::Mutex`.
//!
//! A poisoned lock (a panic while holding the guard) is unrecoverable in
//! the suite's usage, so `lock()` propagates the panic like the real
//! `parking_lot` would surface the original one.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8_000);
    }
}
