//! Offline stand-in for the subset of `criterion` the suite's benches use:
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a fixed warm-up followed by a
//! timed batch, reporting the mean wall-clock time per iteration. That is
//! enough to compare hot paths locally; it makes no statistical claims.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Number of warm-up iterations before timing starts.
const WARMUP_ITERS: u32 = 3;
/// Number of timed iterations per benchmark.
const MEASURE_ITERS: u32 = 10;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
        }
    }
}

/// Times closures, mirroring `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(MEASURE_ITERS);
    }

    fn report(&self, name: &str) {
        if self.mean_ns >= 1e6 {
            println!("{name:<50} {:>12.3} ms/iter", self.mean_ns / 1e6);
        } else if self.mean_ns >= 1e3 {
            println!("{name:<50} {:>12.3} us/iter", self.mean_ns / 1e3);
        } else {
            println!("{name:<50} {:>12.1} ns/iter", self.mean_ns);
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark over `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs `f` as a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name with a parameter value.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = "Runs every benchmark registered in this group."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("t", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| n * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
