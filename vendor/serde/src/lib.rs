//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` keeps compiling without network access. See
//! `vendor/serde_derive` for the rationale.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
