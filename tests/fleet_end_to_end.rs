//! End-to-end fleet tests: a multi-GPU fleet must beat the best single
//! GPU, admission control must hold under pressure, and the JSON report
//! must carry the acceptance metrics.

use sgprs_suite::cluster::{
    AdmissionController, ChurnTrace, Fleet, FleetConfig, FleetNode, ModelKind, NodeSpec,
    ShardedFleet, TenantSpec,
};
use sgprs_suite::gpu_sim::GpuSpec;
use sgprs_suite::rt::SimDuration;
use sgprs_suite::workload::{FleetScenario, SchedulerKind, ScenarioSpec};

/// A 3-node fleet under the paper's ResNet18@30fps workload must achieve
/// a total FPS at least as high as the best single-node Scenario-2
/// (np = 3) result at the same per-node tenant count.
#[test]
fn three_node_fleet_beats_best_single_node_scenario2() {
    let per_node = 10;
    // Best Scenario-2 variant: SGPRS at os = 1.5 (the paper's sweet spot).
    let single = ScenarioSpec::new(
        3,
        SchedulerKind::Sgprs {
            oversubscription: 1.5,
        },
        2,
    )
    .run(per_node);
    let fleet = FleetScenario::homogeneous(3, 3 * per_node, 2).run();
    assert!(
        fleet.total_fps >= single.total_fps,
        "3-node fleet {:.1} fps must beat one GPU at {:.1} fps",
        fleet.total_fps,
        single.total_fps
    );
    assert!(
        fleet.total_fps > single.total_fps * 2.5,
        "and should scale close to 3x: {:.1} vs {:.1}",
        fleet.total_fps,
        single.total_fps
    );
}

/// Overload is absorbed by admission control: with far more offered
/// tenants than the fleet can carry, rejection kicks in, the admitted
/// population keeps near-full throughput, and nothing panics.
#[test]
fn fleet_rejects_overload_instead_of_collapsing() {
    let saturated = FleetScenario::homogeneous(2, 80, 2).run();
    assert!(saturated.rejected > 0, "{saturated:?}");
    assert!(saturated.rejection_rate > 0.2);
    // The admitted tenants still run near the fleet's capacity: more than
    // what 30 unthrottled tenants on one GPU would sustain.
    assert!(saturated.total_fps > 900.0, "{saturated:?}");
    // And the admitted population misses almost nothing.
    assert!(saturated.dmr < 0.05, "{saturated:?}");
}

/// The admission bound is respected at every instant of a churned run.
#[test]
fn churned_fleet_never_overcommits_a_node() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let cfg = FleetConfig::new(scenario.nodes.clone()).with_seed(scenario.seed);
    let mut fleet = Fleet::new(cfg);
    let m = fleet.run(scenario.trace(), scenario.sim);
    assert!(m.arrivals > 0);
    let ctl = AdmissionController::default();
    for node in fleet.nodes() {
        let budget = ctl.budget(node, None);
        assert!(
            node.total_demand() <= budget + 1e-9,
            "{}: demand {:.1} within budget {:.1}",
            node.spec.name,
            node.total_demand(),
            budget
        );
    }
}

/// The JSON report carries the headline fields the acceptance criteria
/// name: positive total FPS and an explicit rejection rate.
#[test]
fn fleet_json_reports_fps_and_rejection_rate() {
    let m = FleetScenario::heterogeneous_churn(3).run();
    let json = m.to_json();
    assert!(m.total_fps > 0.0);
    assert!(json.contains("\"total_fps\""));
    assert!(json.contains("\"rejection_rate\""));
    assert!(json.contains("\"utilization_histogram\""));
    assert_eq!(json.matches("\"name\"").count(), 4, "four nodes reported");
}

/// The acceptance criterion of the parallel fan-out: on the
/// heterogeneous churn scenario, parallel and sequential epoch execution
/// produce byte-identical `FleetMetrics` JSON.
#[test]
fn parallel_epochs_match_sequential_on_heterogeneous_churn() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let run = |sequential: bool| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone()).with_seed(scenario.seed);
        if sequential {
            cfg = cfg.sequential();
        }
        Fleet::new(cfg).run(scenario.trace(), scenario.sim)
    };
    let parallel = run(false);
    let sequential = run(true);
    assert_eq!(parallel, sequential);
    assert_eq!(parallel.to_json(), sequential.to_json());
}

/// The sharded scale-out scenario serves real traffic and the admission
/// bound still holds on every node at the end — routing through shard
/// summaries must never bypass per-node admission.
#[test]
fn sharded_scale_out_serves_without_overcommitting() {
    let scenario = FleetScenario::scale_out(64, 3);
    let mut fleet = ShardedFleet::new(
        FleetConfig::new(scenario.nodes.clone()).with_seed(scenario.seed),
        8,
    );
    assert_eq!(fleet.shard_count(), 8);
    let m = fleet.run(scenario.trace(), scenario.sim);
    assert!(m.total_fps > 0.0);
    assert!(m.arrivals > 100, "{m:?}");
    assert!(m.admitted > 0);
    let ctl = AdmissionController::default();
    for node in fleet.nodes() {
        let budget = ctl.budget(node, None);
        assert!(
            node.total_demand() <= budget + 1e-9,
            "{}: demand {:.1} within budget {:.1}",
            node.spec.name,
            node.total_demand(),
            budget
        );
    }
}

/// Heterogeneous capacity ordering shows up in the metrics: the 68-SM
/// node carries at least as much work as the 23-SM node.
#[test]
fn bigger_nodes_carry_more_of_the_fleet_load() {
    let mut fleet = Fleet::new(FleetConfig::new(vec![
        NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
        NodeSpec::sgprs("small", GpuSpec::synthetic(23)).with_contexts(2),
    ]));
    let tenants =
        (0..20).map(|i| TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0));
    let m = fleet.run(
        ChurnTrace::static_population(tenants),
        SimDuration::from_secs(2),
    );
    let by_name = |name: &str| {
        m.nodes
            .iter()
            .find(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name}"))
    };
    assert!(by_name("big").completed >= by_name("small").completed);
    let ctl = AdmissionController::default();
    let big = FleetNode::new(NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()));
    let small =
        FleetNode::new(NodeSpec::sgprs("small", GpuSpec::synthetic(23)).with_contexts(2));
    assert!(ctl.budget(&big, None) > ctl.budget(&small, None));
}
