//! End-to-end fleet tests: a multi-GPU fleet must beat the best single
//! GPU, admission control must hold under pressure, the JSON report
//! must carry the acceptance metrics (schema pinned by a golden
//! snapshot), metrics must be bit-identical across every execution
//! strategy, and deadline-aware queueing with fps re-pricing must beat
//! FIFO-reject on the overload burst.

use sgprs_suite::cluster::{
    AdmissionController, ArrivalStream, ChurnConfig, ChurnTrace, Fleet, FleetConfig,
    FleetMetricsBuilder, FleetNode, ModelKind, NodeSpec, QueuePolicy, ShardedFleet, Span,
    TelemetryConfig, TenantSpec, BASE_SCHEMA_VERSION, METRICS_SCHEMA_VERSION,
};
use sgprs_suite::core::MetricsCollector;
use sgprs_suite::gpu_sim::GpuSpec;
use sgprs_suite::rt::{SimDuration, SimTime};
use sgprs_suite::workload::{FleetScenario, SchedulerKind, ScenarioSpec};

/// A 3-node fleet under the paper's ResNet18@30fps workload must achieve
/// a total FPS at least as high as the best single-node Scenario-2
/// (np = 3) result at the same per-node tenant count.
#[test]
fn three_node_fleet_beats_best_single_node_scenario2() {
    let per_node = 10;
    // Best Scenario-2 variant: SGPRS at os = 1.5 (the paper's sweet spot).
    let single = ScenarioSpec::new(
        3,
        SchedulerKind::Sgprs {
            oversubscription: 1.5,
        },
        2,
    )
    .run(per_node);
    let fleet = FleetScenario::homogeneous(3, 3 * per_node, 2).run();
    assert!(
        fleet.total_fps >= single.total_fps,
        "3-node fleet {:.1} fps must beat one GPU at {:.1} fps",
        fleet.total_fps,
        single.total_fps
    );
    assert!(
        fleet.total_fps > single.total_fps * 2.5,
        "and should scale close to 3x: {:.1} vs {:.1}",
        fleet.total_fps,
        single.total_fps
    );
}

/// Overload is absorbed by admission control: with far more offered
/// tenants than the fleet can carry, rejection kicks in, the admitted
/// population keeps near-full throughput, and nothing panics.
#[test]
fn fleet_rejects_overload_instead_of_collapsing() {
    let saturated = FleetScenario::homogeneous(2, 80, 2).run();
    assert!(saturated.rejected > 0, "{saturated:?}");
    assert!(saturated.rejection_rate > 0.2);
    // The admitted tenants still run near the fleet's capacity: more than
    // what 30 unthrottled tenants on one GPU would sustain.
    assert!(saturated.total_fps > 900.0, "{saturated:?}");
    // And the admitted population misses almost nothing.
    assert!(saturated.dmr < 0.05, "{saturated:?}");
}

/// The admission bound is respected at every instant of a churned run.
#[test]
fn churned_fleet_never_overcommits_a_node() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let cfg = FleetConfig::new(scenario.nodes.clone()).with_seed(scenario.seed);
    let mut fleet = Fleet::new(cfg);
    let m = fleet.run(scenario.trace(), scenario.sim);
    assert!(m.arrivals > 0);
    let ctl = AdmissionController::default();
    for node in fleet.nodes() {
        let budget = ctl.budget(node, None);
        assert!(
            node.total_demand() <= budget + 1e-9,
            "{}: demand {:.1} within budget {:.1}",
            node.spec.name,
            node.total_demand(),
            budget
        );
    }
}

/// The JSON report carries the headline fields the acceptance criteria
/// name: positive total FPS and an explicit rejection rate.
#[test]
fn fleet_json_reports_fps_and_rejection_rate() {
    let m = FleetScenario::heterogeneous_churn(3).run();
    let json = m.to_json();
    assert!(m.total_fps > 0.0);
    assert!(json.contains("\"total_fps\""));
    assert!(json.contains("\"rejection_rate\""));
    assert!(json.contains("\"utilization_histogram\""));
    assert_eq!(json.matches("\"name\"").count(), 4, "four nodes reported");
}

/// The determinism matrix: on the heterogeneous churn scenario the
/// `FleetMetrics` JSON is byte-identical across worker counts
/// {1, 2, 4, 8} × {sequential, parallel} × {flat, sharded}. The sharded
/// leg uses one shard covering all four nodes, which provably routes
/// through the identical placement scan — so the *entire* 16-way product
/// collapses onto one reference string. (FIFO queueing is the default
/// here: this is also the pin that the queue subsystem leaves the
/// classic dispatcher bit-for-bit unchanged.)
#[test]
fn fleet_metrics_identical_across_workers_parallelism_and_dispatch() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let run = |parallel: bool, workers: usize, sharded: bool| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers);
        if !parallel {
            cfg = cfg.sequential();
        }
        if sharded {
            cfg = cfg.with_sharding(scenario.nodes.len());
        }
        Fleet::new(cfg).run(scenario.trace(), scenario.sim).to_json()
    };
    let reference = run(false, 1, false);
    for workers in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            for sharded in [false, true] {
                assert_eq!(
                    run(parallel, workers, sharded),
                    reference,
                    "workers={workers} parallel={parallel} sharded={sharded} \
                     must be bit-identical to the sequential flat reference"
                );
            }
        }
    }
}

/// The streaming tentpole pin: the generator-backed [`ArrivalStream`]
/// must reproduce the pre-materialised trace byte-for-byte through the
/// full fleet pipeline — the same 16-way matrix as above (workers
/// {1, 2, 4, 8} × {sequential, parallel} × {flat, sharded}), every leg
/// fed by a lazy stream, all collapsing onto the materialised
/// sequential-flat reference. Churn scenarios stream by default now
/// (`FleetScenario::run` never materialises the trace), so this is the
/// guard that the default path and the classic path are the same path.
#[test]
fn streamed_arrivals_are_byte_identical_to_the_materialised_trace() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    assert!(
        scenario.streams_arrivals(),
        "churn scenarios must take the generator-backed path"
    );
    // The reference run consumes the fully materialised trace.
    let reference = Fleet::new(
        FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(1)
            .sequential(),
    )
    .run(scenario.trace(), scenario.sim)
    .to_json();
    for workers in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            for sharded in [false, true] {
                let mut cfg = FleetConfig::new(scenario.nodes.clone())
                    .with_seed(scenario.seed)
                    .with_workers(workers);
                if !parallel {
                    cfg = cfg.sequential();
                }
                if sharded {
                    cfg = cfg.with_sharding(scenario.nodes.len());
                }
                let arrivals = scenario.arrivals();
                assert!(arrivals.is_streaming(), "the lazy path must be exercised");
                assert_eq!(
                    Fleet::new(cfg).run(arrivals, scenario.sim).to_json(),
                    reference,
                    "workers={workers} parallel={parallel} sharded={sharded}: \
                     streamed arrivals must be byte-identical to the \
                     materialised reference"
                );
            }
        }
    }
}

/// The O(active) memory pin: the tenant-id table is sized by the peak
/// *concurrently active* population, not by how many tenants the stream
/// carried. Quadrupling the horizon multiplies the streamed arrivals but
/// must leave the id capacity at the (unchanged) churn steady state —
/// and LIFO recycling keeps `id_capacity == peak_active` exactly.
#[test]
fn id_table_is_bounded_by_active_tenants_not_trace_length() {
    let churn = ChurnConfig {
        mean_interarrival: SimDuration::from_millis(5),
        min_lifetime: SimDuration::from_millis(50),
        max_lifetime: SimDuration::from_millis(200),
        max_wait: Some(SimDuration::from_millis(100)),
        ..ChurnConfig::default()
    };
    let nodes: Vec<NodeSpec> = (0..8)
        .map(|i| NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()))
        .collect();
    let replay_for = |secs: u64| {
        let horizon = SimDuration::from_secs(secs);
        let mut fleet = Fleet::new(FleetConfig::new(nodes.clone()));
        fleet.replay_dispatch(ArrivalStream::generate(&churn, horizon, 7), horizon)
    };
    let short = replay_for(5);
    let long = replay_for(20);
    assert!(
        long.arrivals >= short.arrivals * 3,
        "the long run must stream several times more tenants: {} vs {}",
        long.arrivals,
        short.arrivals
    );
    for replay in [&short, &long] {
        assert_eq!(
            replay.id_capacity, replay.peak_active,
            "LIFO recycling must keep the table at the high-water mark: {replay:?}"
        );
    }
    assert!(
        long.id_capacity <= short.id_capacity * 2,
        "id capacity tracks the (unchanged) active steady state, not the \
         trace length: {} after {} arrivals vs {} after {}",
        long.id_capacity,
        long.arrivals,
        short.id_capacity,
        short.arrivals
    );
    assert!(
        long.id_capacity < usize::try_from(long.arrivals).expect("fits") / 4,
        "the table must stay far below one slot per streamed tenant: {long:?}"
    );
}

/// The same matrix for genuinely multi-shard dispatch (2-node shards may
/// place arrivals differently from the flat scan, so it gets its own
/// reference): the execution strategy must still never change results.
#[test]
fn multi_shard_dispatch_is_deterministic_across_workers() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let run = |parallel: bool, workers: usize| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers)
            .with_sharding(2);
        if !parallel {
            cfg = cfg.sequential();
        }
        Fleet::new(cfg).run(scenario.trace(), scenario.sim).to_json()
    };
    let reference = run(false, 1);
    for workers in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            assert_eq!(run(parallel, workers), reference);
        }
    }
}

/// The queueing acceptance criterion: on the overload burst, deadline-
/// aware queueing plus the fps re-pricing ladder yields a strictly lower
/// eventual rejection rate than FIFO-reject, at equal-or-better fleet
/// DMR, and the new counters surface in the JSON export.
#[test]
fn deadline_repricing_beats_fifo_reject_on_the_overload_burst() {
    let fifo = FleetScenario::overload_burst(8);
    let smart = FleetScenario::overload_burst(8).with_queue(QueuePolicy::EarliestDeadline, true);
    assert_eq!(fifo.trace(), smart.trace(), "same offered load");
    let fifo_m = fifo.run();
    let smart_m = smart.run();
    assert!(
        fifo_m.rejected > 0,
        "the burst must overload the baseline: {fifo_m:?}"
    );
    assert!(
        smart_m.rejection_rate < fifo_m.rejection_rate,
        "re-pricing must strictly lower the eventual rejection rate: \
         {:.4} vs {:.4}",
        smart_m.rejection_rate,
        fifo_m.rejection_rate
    );
    assert!(
        smart_m.dmr <= fifo_m.dmr + 1e-12,
        "at equal or better fleet DMR: {:.6} vs {:.6}",
        smart_m.dmr,
        fifo_m.dmr
    );
    assert!(smart_m.degraded > 0, "the ladder was exercised: {smart_m:?}");
    assert!(smart_m.upgrades > 0, "and capacity freed for upgrades: {smart_m:?}");
    assert!(
        smart_m.queue_wait_max_secs <= 2.0 + 1e-9,
        "queue deadlines cap the wait: {smart_m:?}"
    );
    assert_eq!(fifo_m.degraded, 0, "the baseline never re-prices");
    assert_eq!(fifo_m.upgrades, 0);
    let json = smart_m.to_json();
    for field in [
        "\"degraded\"",
        "\"upgrades\"",
        "\"expired\"",
        "\"queue_wait_mean_secs\"",
        "\"queue_wait_max_secs\"",
    ] {
        assert!(json.contains(field), "{field} missing from JSON export");
    }
}

/// The event-driven determinism matrix, mirroring the epoch matrix
/// above: on the heterogeneous churn scenario, `Fleet::run_events`
/// produces byte-identical `FleetMetrics` JSON across worker counts
/// {1, 4} × {flat, sharded} (the event engine is single-threaded — the
/// worker knob must be inert — and the single whole-fleet shard provably
/// routes through the identical placement scan). The event path also
/// reports zero truncated jobs, where the epoch path on the same trace
/// reports the boundary artifact.
#[test]
fn event_driven_metrics_identical_across_workers_and_dispatch() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let run = |workers: usize, sharded: bool| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers);
        if sharded {
            cfg = cfg.with_sharding(scenario.nodes.len());
        }
        Fleet::new(cfg).run_events(scenario.trace(), scenario.sim)
    };
    let reference = run(1, false);
    assert_eq!(reference.truncated_jobs, 0, "the event path never truncates");
    let reference_json = reference.to_json();
    for workers in [1usize, 4] {
        for sharded in [false, true] {
            assert_eq!(
                run(workers, sharded).to_json(),
                reference_json,
                "workers={workers} sharded={sharded} must be byte-identical \
                 to the event-driven reference"
            );
        }
    }
    // The same trace on the epoch grid shows the truncation artifact the
    // event path removes.
    let epoch = Fleet::new(
        FleetConfig::new(scenario.nodes.clone()).with_seed(scenario.seed),
    )
    .run(scenario.trace(), scenario.sim);
    assert!(
        epoch.truncated_jobs > 0,
        "the epoch path truncates in-flight jobs at boundaries: {epoch:?}"
    );
}

/// The migration cost model acceptance criterion: on the hot-naive-node
/// overload scenario with migration enabled, mid-epoch migration at
/// job-release boundaries (event path) yields DMR ≤ the epoch-boundary
/// path at equal rejection rate, and the event path's migrations pay a
/// nonzero state-transfer stall — while re-pricing partition switches,
/// in the same execution mode, report zero stall.
#[test]
fn event_migration_beats_epoch_migration_and_pays_an_explicit_stall() {
    let epoch = FleetScenario::event_vs_epoch(6);
    let event = FleetScenario::event_vs_epoch(6).with_event_driven();
    assert_eq!(epoch.trace(), event.trace(), "same offered load");
    let epoch_m = epoch.run();
    let event_m = event.run();
    assert_eq!(
        epoch_m.rejection_rate, event_m.rejection_rate,
        "the contrast holds at equal rejection rate"
    );
    assert!(
        epoch_m.migrations > 0,
        "the hot naive node must trigger epoch-boundary migration: {epoch_m:?}"
    );
    assert!(
        event_m.migrations > 0,
        "and release-boundary migration in event mode: {event_m:?}"
    );
    assert!(
        event_m.dmr <= epoch_m.dmr,
        "mid-epoch migration reacts faster: event DMR {:.4} vs epoch {:.4}",
        event_m.dmr,
        epoch_m.dmr
    );
    assert!(
        event_m.migration_stall_secs > 0.0,
        "migrations pay the state-transfer stall: {event_m:?}"
    );
    assert_eq!(
        epoch_m.migration_stall_secs, 0.0,
        "the epoch path keeps its pre-existing free-migration contract"
    );
    assert_eq!(event_m.truncated_jobs, 0);
    assert!(epoch_m.truncated_jobs > 0);

    // The flip side of the cost model: re-pricing degrade/upgrade
    // switches are SGPRS partition switches — the same event-driven
    // engine reports zero stall for a run that exercises them heavily.
    let repriced = FleetScenario::overload_burst(6)
        .with_queue(QueuePolicy::EarliestDeadline, true)
        .with_event_driven();
    let repriced_m = repriced.run();
    assert!(
        repriced_m.degraded > 0 && repriced_m.upgrades > 0,
        "the ladder was exercised in event mode: {repriced_m:?}"
    );
    assert_eq!(
        repriced_m.migration_stall_secs, 0.0,
        "partition switches never pay the migration stall"
    );
    assert_eq!(repriced_m.migrations, 0);
    assert_eq!(repriced_m.truncated_jobs, 0);
}

/// Golden snapshot of the `FleetMetrics::to_json` schema: field names,
/// order, and formatting are pinned so metric renames (or the new
/// queue/degrade counters) cannot silently break downstream consumers.
/// The values come from a hand-built, fully deterministic builder fold —
/// no scheduler runs — so the string is stable by construction. If this
/// test fails because the schema intentionally changed, update the
/// snapshot *and* whatever consumes the JSON.
#[test]
fn fleet_metrics_json_schema_matches_golden_snapshot() {
    // One node epoch: 4 releases, 3 completions (1 late), 1 skip.
    let mut c = MetricsCollector::new(vec!["t".into()], SimTime::ZERO);
    let mut t = SimTime::ZERO;
    for i in 0..4u64 {
        t = SimTime::ZERO + SimDuration::from_millis(33 * (i + 1));
        c.record_release(0, t);
        if i < 3 {
            let fin = t + SimDuration::from_millis(10);
            let deadline = if i < 1 {
                t + SimDuration::from_millis(5)
            } else {
                t + SimDuration::from_millis(33)
            };
            c.record_completion(0, t, fin, deadline);
        } else {
            c.record_skip(0, t);
        }
    }
    let epoch = c.finish(t + SimDuration::from_secs(1));
    let mut b = FleetMetricsBuilder::new(vec!["gpu0".into(), "gpu1".into()], vec![68, 34]);
    b.record_epoch(0, &epoch);
    b.record_utilization(0, 0.42);
    b.record_utilization(1, 0.95);
    b.record_wait(SimDuration::from_millis(1500));
    let json = b.finish(SimDuration::from_secs(2), &[1, 0], 1).to_json();
    let golden = "\
{
  \"schema_version\": 2,
  \"window_secs\": 2.000,
  \"total_fps\": 1.50,
  \"dmr\": 0.5000,
  \"arrivals\": 0,
  \"admitted\": 0,
  \"rejected\": 0,
  \"infeasible\": 0,
  \"deferred\": 0,
  \"duplicates\": 0,
  \"admitted_after_wait\": 0,
  \"still_queued\": 1,
  \"departures\": 0,
  \"migrations\": 0,
  \"truncated_jobs\": 0,
  \"migration_stall_secs\": 0.0000,
  \"degraded\": 0,
  \"upgrades\": 0,
  \"expired\": 0,
  \"queue_wait_mean_secs\": 1.5000,
  \"queue_wait_max_secs\": 1.5000,
  \"rejection_rate\": 0.0000,
  \"utilization_histogram\": [0, 0, 0, 0, 1, 0, 0, 0, 0, 1],
  \"nodes\": [
    {\"name\": \"gpu0\", \"total_sms\": 68, \"fps\": 1.50, \"dmr\": 0.5000, \"released\": 4, \"completed\": 3, \"missed\": 2, \"mean_utilization\": 0.4200, \"final_tenants\": 1},
    {\"name\": \"gpu1\", \"total_sms\": 34, \"fps\": 0.00, \"dmr\": 0.0000, \"released\": 0, \"completed\": 0, \"missed\": 0, \"mean_utilization\": 0.9500, \"final_tenants\": 0}
  ]
}";
    assert_eq!(
        json, golden,
        "FleetMetrics::to_json schema drifted — update the snapshot AND \
         every downstream consumer of the JSON"
    );
}

/// The p2c determinism matrix: with power-of-two-choices routing the
/// probe pair comes from a seeded hash (never from wall-clock or map
/// order), so the `FleetMetrics` JSON must be byte-identical across
/// worker counts {1, 2, 4, 8} × {sequential, parallel} on the epoch
/// path, and across workers {1, 4} on the (single-threaded) event path.
#[test]
fn p2c_dispatch_is_deterministic_across_workers_and_engines() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let epoch_run = |parallel: bool, workers: usize| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers)
            .with_p2c_sharding(2);
        if !parallel {
            cfg = cfg.sequential();
        }
        Fleet::new(cfg).run(scenario.trace(), scenario.sim).to_json()
    };
    let reference = epoch_run(false, 1);
    for workers in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            assert_eq!(
                epoch_run(parallel, workers),
                reference,
                "workers={workers} parallel={parallel}: p2c routing must be \
                 byte-identical to the sequential reference"
            );
        }
    }
    let event_run = |workers: usize| {
        let cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers)
            .with_p2c_sharding(2);
        Fleet::new(cfg)
            .run_events(scenario.trace(), scenario.sim)
            .to_json()
    };
    let event_reference = event_run(1);
    assert_eq!(event_run(4), event_reference, "event p2c run is worker-inert");
}

/// The metro-scale scenario end-to-end in both engines: 512
/// heterogeneous nodes behind p2c routing absorb churn plus burst waves,
/// the admission bound holds on every node afterwards, and the event
/// path still never truncates a job at this scale.
#[test]
fn metro_scale_serves_in_both_engines() {
    let epoch_scenario = FleetScenario::metro_scale(512, 4);
    let event_scenario = FleetScenario::metro_scale(512, 4).with_event_driven();
    assert_eq!(
        epoch_scenario.trace(),
        event_scenario.trace(),
        "same offered load"
    );
    let epoch_m = epoch_scenario.run();
    assert!(epoch_m.arrivals > 512, "brisk metro churn: {}", epoch_m.arrivals);
    assert!(epoch_m.admitted > 0 && epoch_m.total_fps > 0.0);
    assert_eq!(epoch_m.nodes.len(), 512);
    let event_m = event_scenario.run();
    assert_eq!(event_m.arrivals, epoch_m.arrivals, "same trace, same offers");
    assert_eq!(event_m.truncated_jobs, 0, "{event_m:?}");
    assert!(event_m.total_fps > 0.0);
    // Routing through p2c summaries must never bypass per-node
    // admission, even at metro scale.
    let mut fleet = Fleet::new(
        FleetConfig::new(epoch_scenario.nodes.clone())
            .with_seed(epoch_scenario.seed)
            .with_p2c_sharding(8),
    );
    let m = fleet.run(epoch_scenario.trace(), epoch_scenario.sim);
    assert!(m.admitted > 0);
    let ctl = AdmissionController::default();
    for node in fleet.nodes() {
        let budget = ctl.budget(node, None);
        assert!(
            node.total_demand() <= budget + 1e-9,
            "{}: demand {:.1} within budget {:.1}",
            node.spec.name,
            node.total_demand(),
            budget
        );
    }
}

/// The sharded scale-out scenario serves real traffic and the admission
/// bound still holds on every node at the end — routing through shard
/// summaries must never bypass per-node admission.
#[test]
fn sharded_scale_out_serves_without_overcommitting() {
    let scenario = FleetScenario::scale_out(64, 3);
    let mut fleet = ShardedFleet::new(
        FleetConfig::new(scenario.nodes.clone()).with_seed(scenario.seed),
        8,
    );
    assert_eq!(fleet.shard_count(), 8);
    let m = fleet.run(scenario.trace(), scenario.sim);
    assert!(m.total_fps > 0.0);
    assert!(m.arrivals > 100, "{m:?}");
    assert!(m.admitted > 0);
    let ctl = AdmissionController::default();
    for node in fleet.nodes() {
        let budget = ctl.budget(node, None);
        assert!(
            node.total_demand() <= budget + 1e-9,
            "{}: demand {:.1} within budget {:.1}",
            node.spec.name,
            node.total_demand(),
            budget
        );
    }
}

/// Heterogeneous capacity ordering shows up in the metrics: the 68-SM
/// node carries at least as much work as the 23-SM node.
#[test]
fn bigger_nodes_carry_more_of_the_fleet_load() {
    let mut fleet = Fleet::new(FleetConfig::new(vec![
        NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
        NodeSpec::sgprs("small", GpuSpec::synthetic(23)).with_contexts(2),
    ]));
    let tenants =
        (0..20).map(|i| TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0));
    let m = fleet.run(
        ChurnTrace::static_population(tenants),
        SimDuration::from_secs(2),
    );
    let by_name = |name: &str| {
        m.nodes
            .iter()
            .find(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name}"))
    };
    assert!(by_name("big").completed >= by_name("small").completed);
    let ctl = AdmissionController::default();
    let big = FleetNode::new(NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()));
    let small =
        FleetNode::new(NodeSpec::sgprs("small", GpuSpec::synthetic(23)).with_contexts(2));
    assert!(ctl.budget(&big, None) > ctl.budget(&small, None));
}

/// The telemetry zero-cost contract: off by default (the export stays on
/// the base schema, exactly as the golden snapshot pins it), and when
/// enabled it observes without steering — stripping the telemetry block
/// from an enabled run reproduces the disabled run byte for byte.
#[test]
fn telemetry_observes_without_steering_and_stays_off_by_default() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let base = scenario.run();
    assert_eq!(base.schema_version, BASE_SCHEMA_VERSION);
    assert!(base.telemetry.is_none(), "telemetry must be opt-in");
    let mut telem = scenario
        .clone()
        .with_telemetry(SimDuration::from_millis(250))
        .run();
    assert_eq!(telem.schema_version, METRICS_SCHEMA_VERSION);
    let report = telem.telemetry.take().expect("telemetry attached");
    assert!(!report.windows.is_empty());
    assert!(report.profile.plans > 0, "{:?}", report.profile);
    telem.schema_version = BASE_SCHEMA_VERSION;
    assert_eq!(
        telem.to_json(),
        base.to_json(),
        "enabling telemetry must never change a simulation decision"
    );
}

/// The 16-way determinism matrix again, telemetry armed: the v3 export
/// (windows, merged sketch quantiles, profile counters) must stay
/// byte-identical across workers {1, 2, 4, 8} × {sequential, parallel}
/// × {flat, sharded} — per-node sketches always fold in node-index
/// order, never in completion order.
#[test]
fn telemetry_matrix_is_byte_identical_across_workers_parallelism_and_dispatch() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let run = |parallel: bool, workers: usize, sharded: bool| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers)
            .with_telemetry(TelemetryConfig::windowed(SimDuration::from_millis(250)));
        if !parallel {
            cfg = cfg.sequential();
        }
        if sharded {
            cfg = cfg.with_sharding(scenario.nodes.len());
        }
        Fleet::new(cfg).run(scenario.trace(), scenario.sim).to_json()
    };
    let reference = run(false, 1, false);
    assert!(reference.contains("\"schema_version\": 3"));
    assert!(reference.contains("\"telemetry\""));
    for workers in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            for sharded in [false, true] {
                assert_eq!(
                    run(parallel, workers, sharded),
                    reference,
                    "workers={workers} parallel={parallel} sharded={sharded}: \
                     telemetry must not leak execution-strategy noise"
                );
            }
        }
    }
}

/// The metro-scale acceptance criterion: with telemetry enabled, both
/// engines emit the per-window time-series and p50/p90/p99 queue-wait
/// quantiles from the merged sketches, byte-identical across worker
/// counts {1, 2, 4, 8}.
#[test]
fn metro_telemetry_is_byte_identical_across_workers_in_both_engines() {
    let scenario = FleetScenario::metro_scale(128, 4);
    let cfg_for = |workers: usize| {
        FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers)
            .with_p2c_sharding(8)
            .with_queue_policy(QueuePolicy::EarliestDeadline)
            .with_repricing()
            .with_telemetry(TelemetryConfig::windowed(SimDuration::from_millis(250)))
    };
    let epoch_run =
        |workers: usize| Fleet::new(cfg_for(workers)).run(scenario.trace(), scenario.sim);
    let reference = epoch_run(1);
    let report = reference.telemetry.as_ref().expect("telemetry attached");
    assert_eq!(report.window_secs, 0.25);
    assert!(report.windows.len() >= 16, "4 s / 250 ms windows");
    assert!(
        report.windows.iter().any(|w| w.arrivals > 0),
        "metro churn lands in the series"
    );
    assert!(report.job_latency.count > 0, "completions fed the sketches");
    assert!(
        report.job_latency.p50_ms <= report.job_latency.p90_ms
            && report.job_latency.p90_ms <= report.job_latency.p99_ms,
        "{:?}",
        report.job_latency
    );
    let reference_json = reference.to_json();
    assert!(reference_json.contains("\"queue_wait_ms\""));
    assert!(reference_json.contains("\"p99\""));
    for workers in [2usize, 4, 8] {
        assert_eq!(
            epoch_run(workers).to_json(),
            reference_json,
            "workers={workers}: merged metro telemetry must be byte-identical"
        );
    }
    let event_run = |workers: usize| {
        Fleet::new(cfg_for(workers))
            .run_events(scenario.trace(), scenario.sim)
            .to_json()
    };
    let event_reference = event_run(1);
    assert!(event_reference.contains("\"telemetry\""));
    assert!(event_reference.contains("\"event_queue_ops\""));
    for workers in [2usize, 4, 8] {
        assert_eq!(
            event_run(workers),
            event_reference,
            "workers={workers}: the event engine's telemetry is worker-inert"
        );
    }
}

/// The span profiler's two-sided contract: **zero-cost off** — a run
/// without [`FleetConfig::with_profiling`] never constructs the
/// profiler, observable as `span_profile() == None` — and **inert on** —
/// arming it changes no deterministic byte, while the captured profile
/// shows exactly the spans the chosen engine executes.
#[test]
fn span_profiler_is_zero_cost_off_and_inert_on() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let cfg = || {
        FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .sequential()
    };

    // Off: the profiler is never constructed — not "constructed but
    // empty". `None` is the proof the disabled path took no clock reads.
    let mut plain = Fleet::new(cfg());
    let plain_json = plain.run(scenario.trace(), scenario.sim).to_json();
    assert!(
        plain.span_profile().is_none(),
        "an unprofiled run must never construct the SpanProfiler"
    );

    // On, epoch engine: identical bytes, and the profile sees the epoch
    // spans (plan, epoch_compile) but no event-engine spans.
    let mut profiled = Fleet::new(cfg().with_profiling());
    let profiled_json = profiled.run(scenario.trace(), scenario.sim).to_json();
    assert_eq!(profiled_json, plain_json, "profiling must not steer the simulation");
    let profile = profiled.span_profile().expect("armed run captures a profile");
    assert!(profile.calls(Span::Plan) > 0, "placements were planned");
    assert!(profile.calls(Span::EpochCompile) > 0, "epochs were compiled");
    assert_eq!(profile.calls(Span::EventPop), 0, "no event queue on the epoch engine");
    assert_eq!(
        profile.stats(Span::Plan).wall_hist.iter().sum::<u64>(),
        profile.calls(Span::Plan),
        "every recorded call lands in exactly one histogram bucket"
    );

    // On, event engine: same story with the event spans populated.
    let plain_event = Fleet::new(cfg())
        .run_events(scenario.trace(), scenario.sim)
        .to_json();
    let mut profiled_event_fleet = Fleet::new(cfg().with_profiling());
    let profiled_event = profiled_event_fleet
        .run_events(scenario.trace(), scenario.sim)
        .to_json();
    assert_eq!(profiled_event, plain_event);
    let event_profile = profiled_event_fleet.span_profile().expect("profile captured");
    assert!(event_profile.calls(Span::EventPop) > 0, "events were popped");
    assert_eq!(
        event_profile.calls(Span::EventExec),
        event_profile.calls(Span::EventPop),
        "every popped event was executed"
    );
    assert!(event_profile.calls(Span::ArrivalPull) > 0, "arrivals were pulled");
}

/// The profiling-armed determinism matrix: with the span profiler on,
/// the `FleetMetrics` JSON stays byte-identical across workers
/// {1, 2, 4, 8} × {sequential, parallel} × {flat, sharded} — and equal
/// to the *unprofiled* sequential-flat reference, so the profiler
/// provably never leaks wall-clock into a deterministic surface.
#[test]
fn profiled_matrix_is_byte_identical_across_workers_parallelism_and_dispatch() {
    let scenario = FleetScenario::heterogeneous_churn(4);
    let run = |parallel: bool, workers: usize, sharded: bool, profiled: bool| {
        let mut cfg = FleetConfig::new(scenario.nodes.clone())
            .with_seed(scenario.seed)
            .with_workers(workers);
        if profiled {
            cfg = cfg.with_profiling();
        }
        if !parallel {
            cfg = cfg.sequential();
        }
        if sharded {
            cfg = cfg.with_sharding(scenario.nodes.len());
        }
        Fleet::new(cfg).run(scenario.trace(), scenario.sim).to_json()
    };
    // The reference runs with profiling OFF: every profiled leg below
    // must match it exactly.
    let reference = run(false, 1, false, false);
    for workers in [1usize, 2, 4, 8] {
        for parallel in [false, true] {
            for sharded in [false, true] {
                assert_eq!(
                    run(parallel, workers, sharded, true),
                    reference,
                    "workers={workers} parallel={parallel} sharded={sharded}: \
                     an armed profiler must not perturb the deterministic export"
                );
            }
        }
    }
}
