//! Property tests for the telemetry quantile sketch: every reported
//! quantile must stay within the documented rank-error bound of the
//! exact sorted-sample quantile, and folding per-chunk sketches in a
//! fixed order must be deterministic — the property the fleet's
//! worker-count-independent telemetry rests on.

use proptest::prelude::*;
use sgprs_suite::cluster::{QuantileSketch, RANK_ERROR_NUMERATOR};

/// Rank distance between the exact target rank `p * (n - 1)` and the
/// interval of ranks occupied by `q` in the sorted sample (zero when the
/// target rank falls inside `q`'s run of equal values).
fn rank_error(sorted: &[u64], p: f64, q: u64) -> f64 {
    let target = p * (sorted.len() as f64 - 1.0);
    let lo = sorted.partition_point(|&x| x < q) as f64;
    let hi = sorted.partition_point(|&x| x <= q) as f64;
    if target < lo {
        lo - target
    } else if target > hi {
        target - hi
    } else {
        0.0
    }
}

/// The documented bound: `RANK_ERROR_NUMERATOR * n / capacity + 1`.
fn bound(n: usize, capacity: usize) -> f64 {
    RANK_ERROR_NUMERATOR as f64 * n as f64 / capacity as f64 + 1.0
}

const PROBES: [f64; 6] = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single sketch over a random sample answers every probed
    /// quantile within the documented rank-error bound, and tracks
    /// min/max/count exactly.
    #[test]
    fn quantiles_stay_within_the_documented_rank_error_bound(
        mut xs in proptest::collection::vec(0u64..1_000_000_000, 1..600),
        capacity in 8usize..128,
    ) {
        let mut sketch = QuantileSketch::new(capacity);
        for &x in &xs {
            sketch.add(x);
        }
        xs.sort_unstable();
        prop_assert_eq!(sketch.count(), xs.len() as u64);
        prop_assert_eq!(sketch.min(), xs[0]);
        prop_assert_eq!(sketch.max(), *xs.last().expect("non-empty"));
        let limit = bound(xs.len(), capacity);
        for &p in &PROBES {
            let q = sketch.quantile(p);
            let err = rank_error(&xs, p, q);
            prop_assert!(
                err <= limit,
                "p={p}: quantile {q} is {err} ranks off (bound {limit}, n={}, K={capacity})",
                xs.len()
            );
        }
    }

    /// Chunking the sample (the per-node split), sketching each chunk,
    /// and folding in chunk order — exactly what the fleet does per
    /// worker-count — keeps the rank-error bound and reproduces
    /// identical quantiles on every re-fold.
    #[test]
    fn merged_sketches_keep_the_bound_and_fold_deterministically(
        mut xs in proptest::collection::vec(0u64..1_000_000_000, 8..600),
        chunk_pow in 0u32..4,
        capacity in 8usize..64,
    ) {
        // Worker counts {1, 2, 4, 8}: the node sets the engines fold over.
        let chunks = 1usize << chunk_pow;
        let chunk_size = xs.len().div_ceil(chunks);
        let fold = || {
            let mut merged = QuantileSketch::new(capacity);
            for chunk in xs.chunks(chunk_size) {
                let mut s = QuantileSketch::new(capacity);
                for &x in chunk {
                    s.add(x);
                }
                merged.merge(&s);
            }
            merged
        };
        let merged = fold();
        let again = fold();
        for &p in &PROBES {
            prop_assert_eq!(
                merged.quantile(p),
                again.quantile(p),
                "the same fold order must reproduce identical quantiles"
            );
        }
        xs.sort_unstable();
        prop_assert_eq!(merged.count(), xs.len() as u64);
        prop_assert_eq!(merged.min(), xs[0]);
        prop_assert_eq!(merged.max(), *xs.last().expect("non-empty"));
        let limit = bound(xs.len(), capacity);
        for &p in &PROBES {
            let err = rank_error(&xs, p, merged.quantile(p));
            prop_assert!(
                err <= limit,
                "p={p}: merged quantile is {err} ranks off (bound {limit}, n={}, K={capacity}, \
                 chunks={chunks})",
                xs.len()
            );
        }
    }

    /// Small samples are exact: while the sketch holds at most
    /// `capacity / 2` points it never compresses, so every probed
    /// quantile equals the nearest-rank sample value's run.
    #[test]
    fn small_samples_are_answered_exactly(
        mut xs in proptest::collection::vec(0u64..1_000_000, 1..32),
    ) {
        let mut sketch = QuantileSketch::new(64);
        for &x in &xs {
            sketch.add(x);
        }
        xs.sort_unstable();
        for &p in &PROBES {
            let err = rank_error(&xs, p, sketch.quantile(p));
            prop_assert!(err < 1.0, "p={p}: exact regime drifted by {err} ranks");
        }
    }
}
