//! Property-based fleet invariants: the sharded dispatch plan (ordered
//! scan *and* power-of-two-choices) and the flat placement scan must
//! agree on feasibility over random fleets and tenants, planned nodes
//! must always pass admission, queue policies must keep their ordering
//! guarantees, and — since every decision now routes through the shared
//! `cluster::policy` kernel — the epoch and event engines must make
//! identical admission/placement decisions at matching decision
//! instants for any trace.
//!
//! Case counts are deliberately small (each case builds a fleet and runs
//! admission maths); CI pins `PROPTEST_CASES` for reproducibility.

use proptest::prelude::*;
use sgprs_suite::cluster::{
    ChurnEvent, ChurnTrace, DispatchOutcome, Fleet, FleetConfig, ModelKind, NodeSpec, Placer,
    PlacementPolicy, QueuePolicy, TenantSpec,
};
use sgprs_suite::gpu_sim::GpuSpec;
use sgprs_suite::rt::{SimDuration, SimTime};

const SM_SIZES: [u32; 5] = [12, 23, 34, 46, 68];
const FPS_STEPS: [f64; 4] = [15.0, 24.0, 30.0, 60.0];

fn node(i: usize, size_idx: usize) -> NodeSpec {
    let sm = SM_SIZES[size_idx % SM_SIZES.len()];
    let gpu = if sm == 68 {
        GpuSpec::rtx_2080_ti()
    } else {
        GpuSpec::synthetic(sm)
    };
    NodeSpec::sgprs(format!("gpu{i}-{sm}sm"), gpu)
}

fn tenant(i: usize, model_idx: usize, fps_idx: usize) -> TenantSpec {
    TenantSpec::new(
        format!("t-{i}"),
        ModelKind::ALL[model_idx % ModelKind::ALL.len()],
        FPS_STEPS[fps_idx % FPS_STEPS.len()],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any tenant the flat O(nodes) scan can place on the current fleet
    /// state, the sharded router (including its stale-summary fallback)
    /// also places — and vice versa: routing through shard summaries
    /// never invents or destroys feasibility, it only narrows where the
    /// placement policy looks first.
    #[test]
    fn sharded_plan_and_flat_scan_agree_on_feasibility(
        size_idxs in prop::collection::vec(0usize..5, 1..10),
        shard_size in 1usize..5,
        preload in 0usize..48,
        probes in prop::collection::vec((0usize..5, 0usize..4), 1..6),
    ) {
        let nodes: Vec<NodeSpec> = size_idxs
            .iter()
            .enumerate()
            .map(|(i, &s)| node(i, s))
            .collect();
        let mut fleet = Fleet::new(FleetConfig::new(nodes).with_sharding(shard_size));
        // Load the fleet into an arbitrary mid-life state (queued and
        // infeasible outcomes are fine — they leave residents behind).
        for i in 0..preload {
            let _ = fleet.dispatch(tenant(i, i, i / 2));
        }
        for (k, &(model_idx, fps_idx)) in probes.iter().enumerate() {
            let probe = TenantSpec::new(
                format!("probe-{k}"),
                ModelKind::ALL[model_idx],
                FPS_STEPS[fps_idx],
            );
            let flat_choice =
                Placer::new(PlacementPolicy::LeastUtilization)
                    .place(fleet.nodes(), &probe, fleet.admission());
            let sharded_choice = fleet.plan(&probe);
            prop_assert_eq!(
                flat_choice.is_some(),
                sharded_choice.is_some(),
                "flat {:?} vs sharded {:?} for {:?}",
                flat_choice,
                sharded_choice,
                &probe
            );
            // A planned node always passes real admission.
            if let Some(idx) = sharded_choice {
                prop_assert!(
                    fleet.admission().evaluate(&fleet.nodes()[idx], &probe).is_admit(),
                    "planned node {} rejects {:?}",
                    idx,
                    &probe
                );
            }
        }
    }

    /// Power-of-two-choices routing agrees with the flat scan on
    /// feasibility for any fleet state: probing two shards (plus the
    /// exhaustive fallback sweep when both refuse) narrows where the
    /// placement policy looks, never whether a feasible node is found —
    /// and a planned node always passes real admission.
    #[test]
    fn p2c_plan_and_flat_scan_agree_on_feasibility(
        size_idxs in prop::collection::vec(0usize..5, 1..10),
        shard_size in 1usize..5,
        preload in 0usize..48,
        probes in prop::collection::vec((0usize..5, 0usize..4), 1..6),
    ) {
        let nodes: Vec<NodeSpec> = size_idxs
            .iter()
            .enumerate()
            .map(|(i, &s)| node(i, s))
            .collect();
        let mut fleet = Fleet::new(FleetConfig::new(nodes).with_p2c_sharding(shard_size));
        for i in 0..preload {
            let _ = fleet.dispatch(tenant(i, i, i / 2));
        }
        for (k, &(model_idx, fps_idx)) in probes.iter().enumerate() {
            let probe = TenantSpec::new(
                format!("probe-{k}"),
                ModelKind::ALL[model_idx],
                FPS_STEPS[fps_idx],
            );
            let flat_choice =
                Placer::new(PlacementPolicy::LeastUtilization)
                    .place(fleet.nodes(), &probe, fleet.admission());
            let p2c_choice = fleet.plan(&probe);
            prop_assert_eq!(
                flat_choice.is_some(),
                p2c_choice.is_some(),
                "flat {:?} vs p2c {:?} for {:?}",
                flat_choice,
                p2c_choice,
                &probe
            );
            if let Some(idx) = p2c_choice {
                prop_assert!(
                    fleet.admission().evaluate(&fleet.nodes()[idx], &probe).is_admit(),
                    "planned node {} rejects {:?}",
                    idx,
                    &probe
                );
            }
        }
    }

    /// Both execution engines make identical kernel decisions at
    /// matching decision instants: over an arbitrary arrivals-at-zero
    /// trace (no departures, so both engines face the same fleet state
    /// at every dispatch), the epoch run and the event run must admit,
    /// defer, degrade, and place *identically* — same per-node resident
    /// (name, fps) lists, same queue, same dispatch counters — under
    /// any routing (flat, shard-scan, p2c) and with or without the
    /// re-pricing ladder. This is the pin that the engines consume the
    /// shared `cluster::policy` kernel and cannot silently fork.
    #[test]
    fn epoch_and_event_engines_make_identical_kernel_decisions(
        size_idxs in prop::collection::vec(0usize..5, 1..6),
        dispatch in 0usize..4,
        repricing in any::<bool>(),
        arrivals in prop::collection::vec((0usize..5, 0usize..4), 1..24),
    ) {
        let nodes: Vec<NodeSpec> = size_idxs
            .iter()
            .enumerate()
            .map(|(i, &s)| node(i, s))
            .collect();
        let cfg = || {
            let mut c = FleetConfig::new(nodes.clone());
            c = match dispatch {
                0 => c,
                1 => c.with_sharding(2),
                2 => c.with_p2c_sharding(2),
                _ => c.with_sharding(3),
            };
            if repricing {
                c = c.with_repricing();
            }
            c
        };
        let trace = || {
            let mut t = ChurnTrace::new();
            for (i, &(model_idx, fps_idx)) in arrivals.iter().enumerate() {
                let spec = tenant(i, model_idx, fps_idx)
                    .with_fps_ladder([12.0, 6.0, 3.0]);
                t.push(SimTime::ZERO, ChurnEvent::Arrival(spec));
            }
            t
        };
        // A short horizon keeps the scheduler simulation cheap; the
        // decisions under test all happen at t = 0.
        let horizon = SimDuration::from_millis(200);
        let mut epoch = Fleet::new(cfg());
        let epoch_m = epoch.run(trace(), horizon);
        let mut event = Fleet::new(cfg());
        let event_m = event.run_events(trace(), horizon);
        prop_assert_eq!(epoch_m.admitted, event_m.admitted, "admitted");
        prop_assert_eq!(epoch_m.deferred, event_m.deferred, "deferred");
        prop_assert_eq!(epoch_m.infeasible, event_m.infeasible, "infeasible");
        prop_assert_eq!(epoch_m.duplicates, event_m.duplicates, "duplicates");
        prop_assert_eq!(epoch_m.degraded, event_m.degraded, "degraded");
        let residents = |f: &Fleet| -> Vec<Vec<(String, u64)>> {
            f.nodes()
                .iter()
                .map(|n| {
                    n.tenants
                        .iter()
                        .map(|t| (t.name.clone(), t.fps.to_bits()))
                        .collect()
                })
                .collect()
        };
        prop_assert_eq!(
            residents(&epoch),
            residents(&event),
            "identical placement decisions node by node"
        );
        prop_assert_eq!(
            epoch.queued_names(),
            event.queued_names(),
            "identical queue contents and order"
        );
        prop_assert_eq!(
            epoch.degraded_residents(),
            event.degraded_residents(),
            "identical re-pricing state"
        );
    }

    /// The wait queue's drain order honours its policy for any arrival
    /// pattern: FIFO keeps arrival order, priority sorts by descending
    /// weight (FIFO within a weight), and nothing is lost or duplicated.
    #[test]
    fn queue_policies_keep_their_ordering_guarantees(
        weights in prop::collection::vec(1u32..9, 1..12),
    ) {
        // One tiny saturated node: everything after saturation queues.
        let saturate = |policy: QueuePolicy| {
            let cfg = FleetConfig::new(vec![NodeSpec::sgprs(
                "small",
                GpuSpec::synthetic(12),
            )])
            .with_queue_policy(policy);
            let mut fleet = Fleet::new(cfg);
            let mut i = 0;
            while matches!(
                fleet.dispatch(
                    TenantSpec::new(format!("filler-{i}"), ModelKind::MobileNet, 30.0)
                ),
                DispatchOutcome::Placed(_)
            ) {
                i += 1;
            }
            // The saturating filler itself queued; drop it for a clean slate.
            fleet.remove(&format!("filler-{i}"));
            fleet
        };
        let mut fifo = saturate(QueuePolicy::Fifo);
        let mut prio = saturate(QueuePolicy::Priority);
        for (i, &w) in weights.iter().enumerate() {
            let t = TenantSpec::new(format!("w{i}"), ModelKind::MobileNet, 30.0)
                .with_weight(w);
            prop_assert_eq!(fifo.dispatch(t.clone()), DispatchOutcome::Queued);
            prop_assert_eq!(prio.dispatch(t), DispatchOutcome::Queued);
        }
        let arrival_order: Vec<String> =
            (0..weights.len()).map(|i| format!("w{i}")).collect();
        prop_assert_eq!(fifo.queued_names(), arrival_order.clone());
        let prio_names = prio.queued_names();
        prop_assert_eq!(prio_names.len(), weights.len(), "nothing lost");
        let weight_of = |name: &str| {
            weights[name[1..].parse::<usize>().expect("wN name")]
        };
        for pair in prio_names.windows(2) {
            let (a, b) = (weight_of(&pair[0]), weight_of(&pair[1]));
            prop_assert!(a >= b, "descending weights: {:?}", prio_names);
            if a == b {
                let (ia, ib) = (
                    arrival_order.iter().position(|n| *n == pair[0]),
                    arrival_order.iter().position(|n| *n == pair[1]),
                );
                prop_assert!(ia < ib, "FIFO within a weight: {:?}", prio_names);
            }
        }
    }

    /// Re-pricing never breaks the admission bound: after any dispatch
    /// sequence with ladders armed, every node's resident demand stays
    /// within its admission budget.
    #[test]
    fn repricing_respects_the_admission_budget(
        size_idxs in prop::collection::vec(0usize..5, 1..6),
        n_tenants in 1usize..40,
        fps_idx in 0usize..4,
    ) {
        let nodes: Vec<NodeSpec> = size_idxs
            .iter()
            .enumerate()
            .map(|(i, &s)| node(i, s))
            .collect();
        let mut fleet = Fleet::new(FleetConfig::new(nodes).with_repricing());
        for i in 0..n_tenants {
            let t = tenant(i, i, fps_idx).with_fps_ladder([12.0, 6.0, 3.0]);
            let _ = fleet.dispatch(t);
        }
        for node in fleet.nodes() {
            let budget = fleet.admission().budget(node, None);
            prop_assert!(
                node.total_demand() <= budget + 1e-9,
                "{}: demand {:.2} exceeds budget {:.2}",
                &node.spec.name,
                node.total_demand(),
                budget
            );
        }
    }
}
