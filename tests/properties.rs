//! Property-based tests spanning the workspace: randomised workloads and
//! configurations must never violate the core invariants.

use proptest::prelude::*;
use sgprs_suite::core::{offline, ContextPoolSpec, SgprsConfig, SgprsScheduler};
use sgprs_suite::dnn::{models, partition, CostModel};
use sgprs_suite::rt::{analysis, EdfQueue, SimDuration, SimTime};
use sgprs_suite::workload::generator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scheduler never panics and its metrics stay consistent for any
    /// (task count, stage count, over-subscription, seed) combination.
    #[test]
    fn scheduler_invariants_hold_for_random_configs(
        n_tasks in 1usize..12,
        stages in 1usize..8,
        os in 1.0f64..2.0,
        contexts in 1usize..4,
        seed in any::<u64>(),
    ) {
        let pool = ContextPoolSpec::new(contexts, os);
        let task = offline::compile_network_task(
            "t",
            &models::resnet18(1, 224),
            &CostModel::calibrated(),
            stages,
            SimDuration::from_micros(33_333),
            &pool,
        ).expect("stage count is small");
        let cfg = SgprsConfig::new(pool).with_seed(seed);
        let mut s = SgprsScheduler::new(cfg, vec![task; n_tasks]);
        let m = s.run(SimTime::ZERO + SimDuration::from_millis(800));
        prop_assert_eq!(m.completed, m.met + m.late);
        prop_assert!(m.dmr >= 0.0 && m.dmr <= 1.0);
        prop_assert!(m.total_fps >= 0.0);
        prop_assert!(m.response_p50 <= m.response_p95);
        prop_assert!(m.response_p95 <= m.response_max);
    }

    /// UUniFast always returns utilisations that are positive and sum to
    /// the requested total.
    #[test]
    fn uunifast_is_a_valid_simplex_sample(
        n in 1usize..64,
        total in 0.01f64..8.0,
        seed in any::<u64>(),
    ) {
        let utils = generator::uunifast(n, total, seed);
        prop_assert_eq!(utils.len(), n);
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9 * total.max(1.0));
        prop_assert!(utils.iter().all(|&u| u >= 0.0));
    }

    /// Every partition of every reference network covers each layer
    /// exactly once with contiguous stages.
    #[test]
    fn partitions_cover_layers_exactly_once(k in 1usize..20) {
        let net = models::mobilenet(1, 224);
        let cost = CostModel::calibrated();
        prop_assume!(k <= net.len());
        let stages = partition::by_count(&net, &cost, k).expect("k <= layers");
        prop_assert_eq!(stages.len(), k);
        let mut covered = 0usize;
        for s in &stages {
            for &l in &s.layers {
                prop_assert_eq!(l, covered, "contiguous, in order");
                covered += 1;
            }
        }
        prop_assert_eq!(covered, net.len());
    }

    /// Virtual deadline assignment always partitions the deadline exactly,
    /// whatever the WCET distribution.
    #[test]
    fn virtual_deadlines_always_sum_exactly(
        wcets_ms in prop::collection::vec(1u64..500, 1..12),
        deadline_ms in 1u64..1_000,
    ) {
        let wcets: Vec<SimDuration> =
            wcets_ms.iter().map(|&w| SimDuration::from_millis(w)).collect();
        let deadline = SimDuration::from_millis(deadline_ms);
        let vds = offline::assign_virtual_deadlines(&wcets, deadline);
        let sum = vds.iter().fold(SimDuration::ZERO, |a, &b| a + b);
        prop_assert_eq!(sum, deadline);
    }

    /// EDF queues always pop in non-decreasing deadline order.
    #[test]
    fn edf_queue_pops_in_deadline_order(
        deadlines in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut q = EdfQueue::new();
        for (i, &d) in deadlines.iter().enumerate() {
            q.push(i, SimTime::from_nanos(d));
        }
        let mut prev = SimTime::ZERO;
        while let Some(e) = q.pop() {
            prop_assert!(e.deadline >= prev);
            prev = e.deadline;
        }
    }

    /// The demand-bound function is monotone in the window length.
    #[test]
    fn demand_bound_is_monotone(
        periods_ms in prop::collection::vec(5u64..100, 1..8),
        t1_ms in 0u64..500,
        t2_ms in 0u64..500,
    ) {
        let set: sgprs_suite::rt::TaskSet = periods_ms
            .iter()
            .map(|&p| {
                sgprs_suite::rt::PeriodicTaskSpec::builder("t")
                    .period(SimDuration::from_millis(p))
                    .wcet(SimDuration::from_millis(1.max(p / 4)))
                    .build()
                    .expect("valid")
            })
            .collect();
        let (lo, hi) = if t1_ms <= t2_ms { (t1_ms, t2_ms) } else { (t2_ms, t1_ms) };
        let d_lo = analysis::demand_bound(&set, SimDuration::from_millis(lo));
        let d_hi = analysis::demand_bound(&set, SimDuration::from_millis(hi));
        prop_assert!(d_lo <= d_hi);
    }
}
