//! Cross-crate integration tests: the offline → online → metrics pipeline
//! holds its internal invariants end to end.

use sgprs_suite::core::{
    offline, Admission, ContextPoolSpec, NaiveConfig, NaiveScheduler, SgprsConfig,
    SgprsScheduler,
};
use sgprs_suite::dnn::{models, partition, CostModel};
use sgprs_suite::gpu_sim::SpeedupModel;
use sgprs_suite::rt::{SimDuration, SimTime};

fn thirty_fps() -> SimDuration {
    SimDuration::from_micros(33_333)
}

fn compiled(pool: &ContextPoolSpec, stages: usize) -> sgprs_suite::core::CompiledTask {
    offline::compile_network_task(
        "t",
        &models::resnet18(1, 224),
        &CostModel::calibrated(),
        stages,
        thirty_fps(),
        pool,
    )
    .expect("valid stage count")
}

#[test]
fn offline_phase_preserves_network_work() {
    let pool = ContextPoolSpec::new(2, 1.0);
    let task = compiled(&pool, 6);
    let stage_sum: f64 = task
        .stage_profiles
        .iter()
        .map(|p| p.total_single_sm_ns())
        .sum();
    let whole = task.whole_profile.total_single_sm_ns();
    assert!(
        (stage_sum - whole).abs() / whole < 1e-9,
        "stages must partition the network exactly"
    );
}

#[test]
fn virtual_deadlines_partition_the_period() {
    let pool = ContextPoolSpec::new(3, 1.5);
    for stages in [2, 4, 6, 9] {
        let task = compiled(&pool, stages);
        let sum = task
            .spec
            .stages
            .iter()
            .fold(SimDuration::ZERO, |a, s| a + s.virtual_deadline);
        assert_eq!(sum, task.spec.deadline, "stages={stages}");
    }
}

#[test]
fn metrics_counters_are_consistent() {
    let pool = ContextPoolSpec::new(2, 1.5);
    let tasks = vec![compiled(&pool, 6); 20];
    let mut s = SgprsScheduler::new(SgprsConfig::new(pool), tasks);
    let m = s.run(SimTime::ZERO + SimDuration::from_secs(2));
    assert_eq!(m.completed, m.met + m.late, "completed = met + late");
    assert!(m.completed + m.skipped + m.dropped <= m.released + 40,
        "conservations up to in-flight jobs: {m:?}");
    assert!(m.dmr >= 0.0 && m.dmr <= 1.0);
    let fps_check = m.completed as f64 / m.window.as_secs_f64();
    assert!((fps_check - m.total_fps).abs() < 1e-6);
}

#[test]
fn per_task_metrics_sum_to_totals() {
    let pool = ContextPoolSpec::new(3, 1.5);
    let tasks = vec![compiled(&pool, 6); 12];
    let mut s = SgprsScheduler::new(SgprsConfig::new(pool), tasks);
    let m = s.run(SimTime::ZERO + SimDuration::from_secs(2));
    let released: u64 = m.per_task.iter().map(|t| t.released).sum();
    let completed: u64 = m.per_task.iter().map(|t| t.completed).sum();
    assert_eq!(released, m.released);
    assert_eq!(completed, m.completed);
}

#[test]
fn trace_spans_match_completed_kernels() {
    let pool = ContextPoolSpec::new(2, 1.0);
    let tasks = vec![compiled(&pool, 6); 3];
    let mut cfg = SgprsConfig::new(pool);
    cfg.tracing = true;
    let mut s = SgprsScheduler::new(cfg, tasks);
    let _ = s.run(SimTime::ZERO + SimDuration::from_millis(500));
    let trace = s.engine().trace().expect("tracing on");
    let closed = trace.spans().iter().filter(|sp| sp.end.is_some()).count();
    assert_eq!(
        closed as u64,
        s.engine().completed_count(),
        "every completed kernel has a closed span"
    );
    for span in trace.spans() {
        if let Some(d) = span.duration() {
            assert!(!d.is_zero(), "kernels take time: {}", span.label);
        }
    }
}

#[test]
fn admission_modes_rank_sensibly_under_overload() {
    let pool = ContextPoolSpec::new(2, 1.0);
    let tasks = vec![compiled(&pool, 6); 26];
    let end = SimTime::ZERO + SimDuration::from_secs(2);
    let run_mode = |mode: Admission| {
        let mut cfg = SgprsConfig::new(pool.clone());
        cfg.admission = mode;
        SgprsScheduler::new(cfg, tasks.clone()).run(end)
    };
    let frame_buffer = run_mode(Admission::FrameBuffer);
    let skip = run_mode(Admission::SkipIfBusy);
    let queue_all = run_mode(Admission::QueueAll);
    // The frame buffer is work-conserving: it should not lose throughput
    // against the strictly self-throttling client.
    assert!(
        frame_buffer.total_fps >= skip.total_fps * 0.95,
        "frame buffer {:.0} vs skip {:.0}",
        frame_buffer.total_fps,
        skip.total_fps
    );
    // Queue-all never skips but its backlog makes responses explode.
    assert_eq!(queue_all.skipped, 0);
    assert!(queue_all.response_p95 >= frame_buffer.response_p95);
}

#[test]
fn naive_and_sgprs_share_metric_semantics() {
    let pool = ContextPoolSpec::new(2, 1.0);
    let tasks = vec![compiled(&pool, 6); 4];
    let end = SimTime::ZERO + SimDuration::from_secs(2);
    let naive = NaiveScheduler::new(NaiveConfig::new(2), tasks.clone()).run(end);
    let sgprs = SgprsScheduler::new(SgprsConfig::new(pool), tasks).run(end);
    // Same released count: the release grid is scheduler-independent.
    assert_eq!(naive.released, sgprs.released);
}

#[test]
fn six_stage_architecture_split_also_schedules() {
    // Use the architecture-boundary split instead of the balanced one.
    let pool = ContextPoolSpec::new(2, 1.5);
    let net = models::resnet18(1, 224);
    let cost = CostModel::calibrated();
    let stages = partition::resnet18_six_stages(&net, &cost).expect("named boundaries");
    let task = offline::compile_stages("t", &stages, net.work_profile(&cost), thirty_fps(), &pool);
    let mut s = SgprsScheduler::new(SgprsConfig::new(pool), vec![task; 8]);
    let m = s.run(SimTime::ZERO + SimDuration::from_secs(2));
    assert!(m.is_miss_free(), "{m:?}");
}

#[test]
fn wcet_profiling_is_consistent_with_engine_timing() {
    // A stage run alone on a context must finish within its profiled WCET.
    let pool = ContextPoolSpec::new(2, 1.0);
    let task = compiled(&pool, 6);
    let speedup = SpeedupModel::calibrated_rtx_2080_ti();
    for (j, profile) in task.stage_profiles.iter().enumerate() {
        let wcet = task.spec.stages[j].wcet;
        let nominal = offline::profile_wcet(profile, &speedup, 5_000, 34);
        assert_eq!(wcet, nominal, "stage {j} WCET is the profiled value");
    }
}
