//! End-to-end shape tests: the paper's qualitative claims must hold on
//! short simulations. (The full quantitative sweeps live in the
//! `sgprs-bench` binaries; see EXPERIMENTS.md.)

use sgprs_suite::core::{NaiveConfig, NaiveScheduler, SgprsConfig, SgprsScheduler};
use sgprs_suite::rt::{SimDuration, SimTime};
use sgprs_suite::workload::{fig1, SchedulerKind, ScenarioSpec};

fn run_scenario(contexts: usize, kind: SchedulerKind, n: usize, secs: u64) -> sgprs_suite::core::RunMetrics {
    ScenarioSpec::new(contexts, kind, secs).run(n)
}

const SGPRS_15: SchedulerKind = SchedulerKind::Sgprs {
    oversubscription: 1.5,
};

#[test]
fn figure1_endpoints_hold_end_to_end() {
    let curves = fig1::generate();
    let peak = |label: &str| {
        curves
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("curve {label}"))
            .peak()
    };
    assert!((peak("convolution") - 32.0).abs() < 0.5);
    assert!((peak("max_pool") - 14.0).abs() < 0.5);
    let net = peak("resnet18 (end-to-end)");
    assert!((21.0..=25.0).contains(&net), "resnet18 ~23x, got {net:.1}");
}

#[test]
fn naive_misses_where_sgprs_is_clean() {
    // Scenario 1 at 16 tasks: past the naive pivot, before the SGPRS one.
    let naive = run_scenario(2, SchedulerKind::Naive, 16, 2);
    let sgprs = run_scenario(2, SGPRS_15, 16, 2);
    assert!(!naive.is_miss_free(), "naive at 16 tasks: {naive:?}");
    assert!(
        sgprs.is_miss_free(),
        "sgprs 1.5 at 16 tasks: late={} skipped={} dropped={}",
        sgprs.late,
        sgprs.skipped,
        sgprs.dropped
    );
}

#[test]
fn sgprs_beats_naive_at_saturation() {
    let naive = run_scenario(3, SchedulerKind::Naive, 30, 2);
    let sgprs = run_scenario(3, SGPRS_15, 30, 2);
    assert!(
        sgprs.total_fps > naive.total_fps * 1.3,
        "sgprs {:.0} fps should clearly beat naive {:.0} fps",
        sgprs.total_fps,
        naive.total_fps
    );
    assert!(
        sgprs.dmr < naive.dmr,
        "sgprs dmr {:.2} must be below naive {:.2}",
        sgprs.dmr,
        naive.dmr
    );
}

#[test]
fn naive_dmr_collapses_drastically_at_overload() {
    let naive = run_scenario(2, SchedulerKind::Naive, 30, 2);
    assert!(naive.dmr > 0.8, "domino effect: {:.2}", naive.dmr);
}

#[test]
fn scenario1_fps_increases_with_oversubscription() {
    // §V: "in Figure 3a the FPS always increases relative to the
    // over-subscription factor" — check at a saturating task count.
    let fps_of = |os: f64| {
        run_scenario(
            2,
            SchedulerKind::Sgprs {
                oversubscription: os,
            },
            28,
            2,
        )
        .total_fps
    };
    let f10 = fps_of(1.0);
    let f15 = fps_of(1.5);
    let f20 = fps_of(2.0);
    assert!(
        f10 < f15 && f15 < f20,
        "Scenario 1 ordering: 1.0={f10:.0} 1.5={f15:.0} 2.0={f20:.0}"
    );
}

#[test]
fn scenario2_has_an_oversubscription_sweet_spot() {
    // §V: with three contexts, os=1.5 edges out os=2.0.
    let fps_of = |os: f64| {
        run_scenario(
            3,
            SchedulerKind::Sgprs {
                oversubscription: os,
            },
            30,
            3,
        )
        .total_fps
    };
    let f15 = fps_of(1.5);
    let f20 = fps_of(2.0);
    assert!(
        f15 > f20 * 0.99,
        "Scenario 2: 1.5 ({f15:.0}) should at least match 2.0 ({f20:.0})"
    );
}

#[test]
fn sgprs_sustains_fps_past_the_pivot() {
    // The headline §V claim: SGPRS variations "not only can sustain total
    // FPS, but their DMR increases with a moderate slope".
    let at_25 = run_scenario(3, SGPRS_15, 25, 3);
    let at_30 = run_scenario(3, SGPRS_15, 30, 3);
    assert!(
        at_30.total_fps > at_25.total_fps * 0.9,
        "FPS must be sustained: 25 tasks -> {:.0}, 30 tasks -> {:.0}",
        at_25.total_fps,
        at_30.total_fps
    );
    assert!(at_30.dmr < 0.75, "moderate DMR at 30 tasks: {:.2}", at_30.dmr);
}

#[test]
fn naive_fps_degrades_past_its_pivot_peak() {
    // After its pivot the naive scheduler's FPS falls below the linear
    // ramp and locks onto a plateau (switch tax + head-of-line blocking).
    let at_14 = run_scenario(3, SchedulerKind::Naive, 14, 2);
    let at_30 = run_scenario(3, SchedulerKind::Naive, 30, 2);
    assert!(
        at_30.total_fps < 30.0 * 30.0 * 0.6,
        "naive cannot keep up with 30 tasks: {:.0}",
        at_30.total_fps
    );
    // The plateau stays in the vicinity of the peak, not at zero.
    assert!(at_30.total_fps > at_14.total_fps * 0.8);
}

#[test]
fn schedulers_agree_under_light_load() {
    // One task is trivially schedulable for everyone.
    let pool = sgprs_suite::core::ContextPoolSpec::new(2, 1.0);
    let spec = ScenarioSpec::new(2, SchedulerKind::Naive, 2);
    let tasks = spec.compile_tasks(1);
    let end = SimTime::ZERO + SimDuration::from_secs(2);
    let naive = NaiveScheduler::new(NaiveConfig::new(2), tasks.clone()).run(end);
    let sgprs = SgprsScheduler::new(SgprsConfig::new(pool), tasks).run(end);
    assert!(naive.is_miss_free());
    assert!(sgprs.is_miss_free());
    assert!((naive.total_fps - sgprs.total_fps).abs() < 2.0);
}
